// Package shard is the horizontal coordination tier: N coordinator
// replicas each own a consistent-hash slice of the device-id space,
// fronted by a gateway that routes the /v1 device API by device id and
// hosts the tier's round leader. Commits go hierarchical — each shard
// reduces its own cohort through the fused payload kernels and ships
// the partial as a wire-form codec blob; the leader folds partials
// across shards through aggregator.Parallel's range kernels — so the
// cross-shard exchange pays codec bytes, never JSON or []float64 gobs.
// The paper's §3.4 halt-until-healthy rule runs horizontally: shard
// heartbeats feed the leader's membership view, and while any shard is
// missing the tier halts assignment (gateway 503s /v1/task, partials
// park) until membership recovers.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the vnode count per shard. 64 vnodes keep the
// per-shard share of the id space within a few percent of uniform while
// the ring stays small enough to sit in cache (N·64 16-byte entries).
const defaultReplicas = 64

// Ring is a consistent-hash map from device ids to shard indices.
// Each shard owns `replicas` pseudo-random points (vnodes) on a
// 64-bit hash circle; a device belongs to the shard owning the first
// vnode at or clockwise of the device's own hash point. Adding or
// removing one shard therefore moves only ~1/N of the id space —
// the property that makes shard-count changes cheap for sticky device
// state (round assignment, scheduler EWMAs) compared to mod-N routing,
// where every shard-count change reshuffles almost every device.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over `shards` shards with `replicas` vnodes
// each (replicas <= 0 selects the default).
func NewRing(shards, replicas int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", shards)
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{
		shards: shards,
		points: make([]ringPoint, 0, shards*replicas),
	}
	var key [16]byte
	for s := 0; s < shards; s++ {
		binary.LittleEndian.PutUint64(key[:8], uint64(s))
		for v := 0; v < replicas; v++ {
			binary.LittleEndian.PutUint64(key[8:], uint64(v))
			r.points = append(r.points, ringPoint{hash: hash64(key[:]), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so every gateway replica builds the
		// identical ring (64-bit collisions are absurdly unlikely, but
		// routing must not depend on sort stability if one happens).
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards reports the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a device id to its owning shard index.
func (r *Ring) Shard(deviceID int64) int {
	var key [8]byte
	binary.LittleEndian.PutUint64(key[:], uint64(deviceID))
	h := hash64(key[:])
	// First vnode clockwise of the device's point, wrapping at the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hash64 is FNV-1a over the key bytes: fast, dependency-free, and
// uniform enough for vnode placement (the 64 vnodes per shard smooth
// any residual clumping).
func hash64(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}
