package core

import (
	"fmt"
	"math"

	"flint/internal/data"
	"flint/internal/fedsim"
	"flint/internal/model"
)

// CaseStudyResult is one Table 4 row: the FL job's projected training time
// and its offline-metric difference against the centralized counterpart.
type CaseStudyResult struct {
	Domain            Domain
	Metric            model.Metric
	CentralizedMetric float64
	FLMetric          float64
	// BaseRate is the eval set's positive-label ratio — the chance-level
	// AUPR a useless model would score (0 for ranking metrics).
	BaseRate float64
	// PerfDiffPct is 100·(FL − centralized)/centralized, the Table 4
	// "performance difference".
	PerfDiffPct float64
	// TrainingVTimeSec is the virtual time to the FL job's best metric.
	TrainingVTimeSec float64
	// TimeToToleranceSec is the Table 4 "projected training time to reach
	// convergence": the first virtual time at which the FL metric enters
	// the acceptable range (within ToleranceFrac of centralized). Falls
	// back to TrainingVTimeSec when never reached.
	TimeToToleranceSec float64
	// ReachedTolerance reports whether the acceptable range was reached.
	ReachedTolerance bool
	Report           *fedsim.Report
}

// ToleranceFrac is §4.1's accuracy-degradation tolerance (up to 5%).
const ToleranceFrac = 0.05

// RunCentralized trains the offline baseline on the pooled proxy dataset
// and evaluates it on the shared held-out set.
func RunCentralized(spec Spec, gen data.Generator, scale Scale, eval *data.Dataset, seed int64) (float64, error) {
	pooled := data.Pool(gen, scale.Clients)
	if pooled.Len() == 0 {
		return 0, fmt.Errorf("core: empty pooled dataset for %s", spec.Domain)
	}
	m, err := model.New(spec.Kind, seed)
	if err != nil {
		return 0, err
	}
	cfg := model.CentralizedConfig{
		Epochs:    spec.CentralizedEpochs,
		BatchSize: 32,
		Schedule:  spec.Schedule,
		Seed:      seed,
	}
	if _, err := model.TrainCentralized(m, pooled, cfg); err != nil {
		return 0, err
	}
	return model.Eval(m, eval, spec.Metric)
}

// RunCaseStudy executes one domain's §4 evaluation: centralized baseline,
// FL simulation, and the comparison row.
func RunCaseStudy(d Domain, scale Scale, seed int64) (*CaseStudyResult, error) {
	spec, err := SpecFor(d)
	if err != nil {
		return nil, err
	}
	env, gen, err := BuildEnvironment(spec, scale, seed)
	if err != nil {
		return nil, err
	}
	central, err := RunCentralized(spec, gen, scale, env.EvalSet, seed)
	if err != nil {
		return nil, err
	}
	cfg := AsyncConfig(spec, scale, seed)
	rep, err := fedsim.Run(cfg, env)
	if err != nil {
		return nil, err
	}
	res := &CaseStudyResult{
		Domain:            d,
		Metric:            spec.Metric,
		CentralizedMetric: central,
		Report:            rep,
	}
	if spec.Metric == model.MetricAUPR {
		res.BaseRate = env.EvalSet.LabelRatio()
	}
	// Use the FL job's best evaluated round: production would deploy the
	// best checkpoint, and the time-to-best is the projected training time.
	best := math.Inf(-1)
	bestTime := rep.FinalVTime
	for _, r := range rep.Rounds {
		if r.Evaluated() && r.Metric > best {
			best = r.Metric
			bestTime = r.VTime
		}
	}
	if math.IsInf(best, -1) {
		return nil, fmt.Errorf("core: FL run for %s produced no evaluations", d)
	}
	res.FLMetric = best
	res.TrainingVTimeSec = bestTime
	if central != 0 {
		res.PerfDiffPct = 100 * (best - central) / central
	}
	// Table 4's training time: first entry into the acceptable range.
	res.TimeToToleranceSec = bestTime
	target := central * (1 - ToleranceFrac)
	for _, r := range rep.Rounds {
		if r.Evaluated() && r.Metric >= target {
			res.TimeToToleranceSec = r.VTime
			res.ReachedTolerance = true
			break
		}
	}
	return res, nil
}

// ModeComparison is one Table 3 column: FedBuff vs FedAvg run to the same
// quality bar.
type ModeComparison struct {
	Domain Domain
	// SpeedUp is syncTime / asyncTime in virtual time to target.
	SpeedUp float64
	// AsyncTasksStarted includes failed and stale tasks (Table 3).
	AsyncTasksStarted int
	// AsyncComputeSec is the async job's total client computation.
	AsyncComputeSec float64
	SyncReport      *fedsim.Report
	AsyncReport     *fedsim.Report
	TargetMetric    float64
}

// timeToMetric returns the first virtual time at which the report's eval
// metric reached the target, or the final vtime when it never did.
func timeToMetric(rep *fedsim.Report, target float64) (float64, bool) {
	for _, r := range rep.Rounds {
		if r.Evaluated() && r.Metric >= target {
			return r.VTime, true
		}
	}
	return rep.FinalVTime, false
}

// ModeOption adjusts the two job configs of a mode comparison (e.g. a
// tighter sync deadline or a different staleness limit) before the runs.
type ModeOption func(syncCfg, asyncCfg *fedsim.Config)

// CompareModes runs both training modes on a shared environment and
// compares their virtual time to a common target metric — the Table 3
// protocol. The target is derived from a probe run: the lower of the two
// modes' final metrics scaled by headroom, so both modes can reach it.
func CompareModes(d Domain, scale Scale, seed int64, headroom float64, opts ...ModeOption) (*ModeComparison, error) {
	if headroom <= 0 || headroom > 1 {
		return nil, fmt.Errorf("core: headroom %v outside (0,1]", headroom)
	}
	spec, err := SpecFor(d)
	if err != nil {
		return nil, err
	}
	envSync, _, err := BuildEnvironment(spec, scale, seed)
	if err != nil {
		return nil, err
	}
	envAsync, _, err := BuildEnvironment(spec, scale, seed)
	if err != nil {
		return nil, err
	}
	syncCfg := SyncConfig(spec, scale, seed)
	asyncCfg := AsyncConfig(spec, scale, seed)
	for _, opt := range opts {
		opt(&syncCfg, &asyncCfg)
	}
	syncRep, err := fedsim.Run(syncCfg, envSync)
	if err != nil {
		return nil, err
	}
	asyncRep, err := fedsim.Run(asyncCfg, envAsync)
	if err != nil {
		return nil, err
	}
	syncBest := bestMetric(syncRep)
	asyncBest := bestMetric(asyncRep)
	target := math.Min(syncBest, asyncBest) * headroom
	syncTime, _ := timeToMetric(syncRep, target)
	asyncTime, _ := timeToMetric(asyncRep, target)
	cmp := &ModeComparison{
		Domain:            d,
		AsyncTasksStarted: asyncRep.TotalStarted,
		AsyncComputeSec:   asyncRep.TotalComputeSec,
		SyncReport:        syncRep,
		AsyncReport:       asyncRep,
		TargetMetric:      target,
	}
	if asyncTime > 0 {
		cmp.SpeedUp = syncTime / asyncTime
	}
	return cmp, nil
}

func bestMetric(rep *fedsim.Report) float64 {
	best := math.Inf(-1)
	for _, r := range rep.Rounds {
		if r.Evaluated() && r.Metric > best {
			best = r.Metric
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// LRTrial is one Fig 10 curve: a schedule's metric trajectory over rounds.
type LRTrial struct {
	Schedule string
	Rounds   []int
	Metrics  []float64
	Final    float64
}

// RunLRStudy reproduces Fig 10: N trials of each candidate schedule on the
// ads task, exposing training stability differences. Returns one trial set
// per schedule.
func RunLRStudy(scale Scale, schedules []model.Schedule, trials int, seed int64) (map[string][]LRTrial, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive, got %d", trials)
	}
	spec, err := SpecFor(Ads)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]LRTrial)
	for _, sched := range schedules {
		for trial := 0; trial < trials; trial++ {
			trialSeed := seed + int64(trial)*1000
			env, _, err := BuildEnvironment(spec, scale, trialSeed)
			if err != nil {
				return nil, err
			}
			cfg := AsyncConfig(spec, scale, trialSeed)
			cfg.Schedule = sched
			cfg.EvalEvery = 2
			rep, err := fedsim.Run(cfg, env)
			if err != nil {
				return nil, err
			}
			rounds, _, vals := rep.MetricSeries()
			tr := LRTrial{Schedule: sched.String(), Rounds: rounds, Metrics: vals}
			if len(vals) > 0 {
				tr.Final = vals[len(vals)-1]
			}
			out[sched.String()] = append(out[sched.String()], tr)
		}
	}
	return out, nil
}
