// Package core assembles the FLINT platform components into the paper's
// experiments: the three case-study domains (§4: advertising, messaging,
// search), the FedAvg-vs-FedBuff comparison of Table 3, the FL-vs-
// centralized comparison of Table 4, and the paper-expected values used by
// EXPERIMENTS.md to record paper-vs-measured for every table and figure.
package core

import (
	"fmt"

	"flint/internal/availability"
	"flint/internal/data"
	"flint/internal/device"
	"flint/internal/fedsim"
	"flint/internal/model"
	"flint/internal/network"
)

// Domain identifies a case-study application.
type Domain string

// The §4 case studies.
const (
	Ads       Domain = "ads"
	Messaging Domain = "messaging"
	Search    Domain = "search"
)

// Domains lists the case studies in paper order.
var Domains = []Domain{Ads, Messaging, Search}

// Scale sizes an experiment run; tests use Small, benches use Medium.
type Scale struct {
	Clients     int
	TestRecords int
	TraceDays   int
	MaxRounds   int
	EvalEvery   int
	// MaxShardExamples caps per-client training records for runtime
	// control (0 = all).
	MaxShardExamples int
	// SessionsPerDay overrides the app's engagement profile (0 = the
	// DefaultLogConfig rate); denser sessions mean faster client arrival
	// and shorter rounds.
	SessionsPerDay float64
	// Bandwidth optionally overrides the default edge bandwidth model —
	// congested networks stretch task durations, the regime where
	// FedBuff's staleness tolerance pays off (Table 3).
	Bandwidth *network.BandwidthModel
}

// SmallScale keeps unit tests fast.
var SmallScale = Scale{Clients: 150, TestRecords: 1500, TraceDays: 7, MaxRounds: 25, EvalEvery: 5, MaxShardExamples: 200}

// MediumScale drives the benchmark harness. The round budget matters: the
// FL-vs-centralized gap closes from ≈−10% at 20 rounds to ≈−0.5% by 200
// rounds (Table 4's parity needs the full budget).
var MediumScale = Scale{Clients: 800, TestRecords: 5000, TraceDays: 14, MaxRounds: 200, EvalEvery: 20, MaxShardExamples: 300}

// Spec holds one domain's modeling choices, mirroring §4's selections.
type Spec struct {
	Domain Domain
	// Kind is the mobile-ready architecture picked in §4 (ads → model B,
	// messaging → model C, search → model A).
	Kind   model.Kind
	Metric model.Metric
	// LocalEpochs/BatchSize/LR are the client-side hyperparameters.
	LocalEpochs int
	BatchSize   int
	Schedule    model.Schedule
	// ServerLR is the FedBuff server step size; sparse-embedding models
	// (messaging) need >1 to counter buffer-mean dilution of embedding
	// rows that only a few clients touch per round.
	ServerLR float64
	// Criteria is the participation filter of §4.1.
	Criteria availability.Criteria
	// CentralizedEpochs trains the offline baseline.
	CentralizedEpochs int
}

// SpecFor returns the domain's default spec.
func SpecFor(d Domain) (Spec, error) {
	base := availability.Criteria{RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true}
	switch d {
	case Ads:
		return Spec{
			Domain: d, Kind: model.KindB, Metric: model.MetricAUPR,
			LocalEpochs: 1, BatchSize: 16,
			Schedule:          model.ExpDecayLR{Base: 0.3, Rate: 0.9, DecaySteps: 20, Floor: 0.02},
			Criteria:          base,
			CentralizedEpochs: 3,
		}, nil
	case Messaging:
		return Spec{
			Domain: d, Kind: model.KindC, Metric: model.MetricAUPR,
			LocalEpochs: 2, BatchSize: 16,
			Schedule:          model.ExpDecayLR{Base: 0.25, Rate: 0.9, DecaySteps: 25, Floor: 0.05},
			ServerLR:          4,
			Criteria:          base,
			CentralizedEpochs: 8,
		}, nil
	case Search:
		return Spec{
			Domain: d, Kind: model.KindA, Metric: model.MetricNDCG,
			LocalEpochs: 2, BatchSize: 8,
			Schedule:          model.ExpDecayLR{Base: 0.08, Rate: 0.92, DecaySteps: 25, Floor: 0.01},
			Criteria:          base,
			CentralizedEpochs: 3,
		}, nil
	default:
		return Spec{}, fmt.Errorf("core: unknown domain %q", d)
	}
}

// NewGenerator builds the domain's data generator at the given scale.
func NewGenerator(d Domain, scale Scale, seed int64) (data.Generator, error) {
	switch d {
	case Ads:
		return data.NewAdsGenerator(data.DefaultAdsConfig(scale.Clients, seed))
	case Messaging:
		return data.NewMessagingGenerator(data.DefaultMessagingConfig(scale.Clients, seed))
	case Search:
		return data.NewSearchGenerator(data.DefaultSearchConfig(scale.Clients, seed))
	default:
		return nil, fmt.Errorf("core: unknown domain %q", d)
	}
}

// BuildEnvironment assembles the full §3.4 input set for a domain: proxy
// shards, criteria-filtered availability trace, on-device time distribution
// and bandwidth model.
func BuildEnvironment(spec Spec, scale Scale, seed int64) (*fedsim.Environment, data.Generator, error) {
	gen, err := NewGenerator(spec.Domain, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	logCfg := availability.DefaultLogConfig(scale.Clients, seed+1)
	logCfg.Days = scale.TraceDays
	if scale.SessionsPerDay > 0 {
		logCfg.SessionsPerDay = scale.SessionsPerDay
	}
	log, err := availability.GenerateLog(logCfg)
	if err != nil {
		return nil, nil, err
	}
	eligible := availability.Apply(log, spec.Criteria)
	trace := availability.BuildTrace(eligible)
	times, err := device.NewTimeDistribution(spec.Kind, device.BenchPool())
	if err != nil {
		return nil, nil, err
	}
	m, err := model.New(spec.Kind, 0)
	if err != nil {
		return nil, nil, err
	}
	bw := network.Default
	if scale.Bandwidth != nil {
		bw = *scale.Bandwidth
	}
	env := &fedsim.Environment{
		Shards:      fedsim.GeneratorProvider{G: gen},
		Trace:       trace,
		Times:       times,
		Bandwidth:   bw,
		EvalSet:     gen.TestSet(scale.TestRecords),
		UpdateBytes: m.Cost().TransferBytes(),
	}
	return env, gen, nil
}

// AsyncConfig builds the domain's FedBuff job config.
func AsyncConfig(spec Spec, scale Scale, seed int64) fedsim.Config {
	serverLR := spec.ServerLR
	if serverLR <= 0 {
		serverLR = 1
	}
	return fedsim.Config{
		Mode:             fedsim.Async,
		ModelKind:        spec.Kind,
		Seed:             seed,
		LocalEpochs:      spec.LocalEpochs,
		BatchSize:        spec.BatchSize,
		Schedule:         spec.Schedule,
		MaxShardExamples: scale.MaxShardExamples,
		Concurrency:      32,
		BufferSize:       8,
		MaxStaleness:     10,
		StalenessAlpha:   0.5,
		ServerLR:         serverLR,
		MaxRounds:        scale.MaxRounds,
		EvalEvery:        scale.EvalEvery,
		Metric:           spec.Metric,
		Executors:        4,
	}
}

// BenchRounds returns each domain's Table 4 round budget: embedding-heavy
// messaging converges over many more aggregations than the dense domains.
func BenchRounds(d Domain) int {
	if d == Messaging {
		return 1000
	}
	return 150
}

// SyncConfig builds the domain's FedAvg job config.
func SyncConfig(spec Spec, scale Scale, seed int64) fedsim.Config {
	return fedsim.Config{
		Mode:             fedsim.Sync,
		ModelKind:        spec.Kind,
		Seed:             seed,
		LocalEpochs:      spec.LocalEpochs,
		BatchSize:        spec.BatchSize,
		Schedule:         spec.Schedule,
		MaxShardExamples: scale.MaxShardExamples,
		CohortSize:       8,
		OverCommit:       1.3,
		RoundDeadlineSec: 900,
		MaxRounds:        scale.MaxRounds,
		EvalEvery:        scale.EvalEvery,
		Metric:           spec.Metric,
		Executors:        4,
	}
}
