package core

// PaperValue pairs a published number with its source table/figure so
// EXPERIMENTS.md can print paper-vs-measured rows.
type PaperValue struct {
	Experiment string
	Name       string
	Value      float64
	Unit       string
}

// PaperExpectations registers every quantitative claim this reproduction
// tracks. Absolute matches are not expected (our substrate is synthetic);
// these anchor the shape comparisons in EXPERIMENTS.md.
var PaperExpectations = []PaperValue{
	// Table 1 — device availability after criteria.
	{"table1", "wifi", 0.70, "fraction"},
	{"table1", "battery80", 0.34, "fraction"},
	{"table1", "modern_os", 0.93, "fraction"},
	{"table1", "intersection", 0.22, "fraction"},
	// Figure 2 — weekly availability swing.
	{"fig2", "trough_over_peak", 0.15, "fraction"},
	// Table 2 — proxy dataset characteristics.
	{"table2", "ads_clients", 700000, "clients"},
	{"table2", "ads_max_records", 39731, "records"},
	{"table2", "ads_avg_records", 99, "records"},
	{"table2", "ads_std_records", 667, "records"},
	{"table2", "ads_label_ratio", 0.28, "fraction"},
	{"table2", "messaging_clients", 1024950, "clients"},
	{"table2", "messaging_avg_records", 184, "records"},
	{"table2", "messaging_label_ratio", 0.05, "fraction"},
	{"table2", "search_clients", 16422290, "clients"},
	{"table2", "search_avg_records", 1.53, "records"},
	{"table2", "search_label_ratio", 0.06, "fraction"},
	// Table 3 — FedBuff over FedAvg.
	{"table3", "speedup_task_a", 1.2, "x"},
	{"table3", "speedup_task_b", 6, "x"},
	{"table3", "speedup_task_c", 2, "x"},
	{"table3", "tasks_started_c", 610000, "tasks"},
	{"table3", "client_compute_c", 25.9 * 86400, "seconds"},
	// Table 4 — case studies.
	{"table4", "ads_training_time", 4.2 * 86400, "seconds"},
	{"table4", "ads_perf_diff", -1.85, "percent"},
	{"table4", "messaging_training_time", 18.9 * 3600, "seconds"},
	{"table4", "messaging_perf_diff", -0.18, "percent"},
	{"table4", "search_training_time", 2.58 * 3600, "seconds"},
	{"table4", "search_perf_diff", -1.64, "percent"},
	// Table 5 — on-device benchmarks (means over 27 devices).
	{"table5", "model_a_params", 1510, "params"},
	{"table5", "model_a_time", 4.98, "seconds"},
	{"table5", "model_b_params", 189000, "params"},
	{"table5", "model_b_time", 61.81, "seconds"},
	{"table5", "model_b_storage", 0.76, "MB"},
	{"table5", "model_b_network", 1.52, "MB"},
	{"table5", "model_c_params", 208000, "params"},
	{"table5", "model_c_time", 3.26, "seconds"},
	{"table5", "model_d_params", 390000, "params"},
	{"table5", "model_d_time", 70.13, "seconds"},
	{"table5", "model_e_params", 922000, "params"},
	{"table5", "model_e_time", 238.38, "seconds"},
	// §3.5 TEE projection.
	{"tee", "updates_per_sec", 3.53, "upd/s"},
	{"tee", "bandwidth", 2.68, "MB/s"},
}

// PaperValuesFor filters the registry by experiment id.
func PaperValuesFor(experiment string) []PaperValue {
	var out []PaperValue
	for _, v := range PaperExpectations {
		if v.Experiment == experiment {
			out = append(out, v)
		}
	}
	return out
}
