package core

import (
	"math"
	"testing"

	"flint/internal/availability"
	"flint/internal/device"
	"flint/internal/fedsim"
	"flint/internal/forecast"
	"flint/internal/model"
	"flint/internal/workflow"
)

// TestEndToEndPipeline exercises the full platform flow the way the Fig 9
// decision workflow composes it: measurement → proxy → benchmark-derived
// compatibility → criteria-filtered simulation → forecasting. This is the
// repository's primary cross-package integration test.
func TestEndToEndPipeline(t *testing.T) {
	seed := int64(77)
	scale := Scale{Clients: 120, TestRecords: 1000, TraceDays: 7, MaxRounds: 12, EvalEvery: 4, MaxShardExamples: 150, SessionsPerDay: 6}
	spec, err := SpecFor(Ads)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Compute-capability criterion from on-device benchmarks (§3.2).
	pool := device.BenchPool()
	compatible, _, err := device.CompatibleDevices(spec.Kind, pool, device.DefaultCompatibility)
	if err != nil {
		t.Fatal(err)
	}
	if len(compatible) == 0 {
		t.Fatal("no compatible devices for model B")
	}
	spec.Criteria.CompatibleDevices = compatible

	// 2. Build environment through the criteria.
	env, _, err := BuildEnvironment(spec, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	if env.Trace.NumClients() == 0 {
		t.Fatal("criteria wiped out the trace")
	}

	// 3. Simulate.
	cfg := AsyncConfig(spec, scale, seed)
	rep, err := fedsim.Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) == 0 {
		t.Fatal("no rounds")
	}

	// 4. Forecast.
	budget, err := forecast.BudgetFromReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if budget.ComputeSec <= 0 {
		t.Fatal("no device budget")
	}
	tee, err := forecast.TEELoad(rep, env.UpdateBytes)
	if err != nil {
		t.Fatal(err)
	}
	if tee.BytesPerSec <= 0 {
		t.Fatal("no TEE load")
	}
	series, err := availability.ComputeSeries(env.Trace, 3600)
	if err != nil {
		t.Fatal(err)
	}
	infra, err := forecast.PlanInfra(rep, series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if infra.Workers < 1 {
		t.Fatal("no workers planned")
	}

	// 5. Drive it through the workflow engine.
	wf := &workflow.Workflow{Name: "integration", Steps: []workflow.Step{
		{Name: "sim", Run: func(c *workflow.Context) (string, bool, error) {
			c.Put("report", rep)
			return "ok", rep.TotalSucceeded > 0, nil
		}},
		{Name: "budget", Run: func(c *workflow.Context) (string, bool, error) {
			return "ok", budget.WastedFraction < 0.9, nil
		}},
	}}
	out, err := wf.Run(workflow.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Go {
		t.Fatalf("integration workflow blocked: %+v", out.Results)
	}
}

// TestCaseStudyMessagingLearns runs the messaging domain at small scale and
// asserts the FL path moves above chance (full parity needs the bench-scale
// round budget; see EXPERIMENTS.md).
func TestCaseStudyMessagingLearns(t *testing.T) {
	scale := tinyScale
	scale.MaxRounds = 40
	scale.EvalEvery = 10
	scale.SessionsPerDay = 6
	res, err := RunCaseStudy(Messaging, scale, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseRate <= 0 {
		t.Fatal("missing base rate")
	}
	if res.FLMetric <= res.BaseRate {
		t.Fatalf("messaging FL at chance: %v vs base %v", res.FLMetric, res.BaseRate)
	}
	if res.CentralizedMetric <= res.BaseRate+0.05 {
		t.Fatalf("messaging centralized too weak: %v", res.CentralizedMetric)
	}
}

// TestBenchRounds covers the per-domain budget helper.
func TestBenchRounds(t *testing.T) {
	if BenchRounds(Messaging) <= BenchRounds(Ads) {
		t.Fatal("messaging needs a larger round budget than ads")
	}
	if BenchRounds(Search) <= 0 {
		t.Fatal("search budget must be positive")
	}
}

// TestCompareModesSearch covers Table 3's search column path (NDCG metric).
func TestCompareModesSearch(t *testing.T) {
	scale := tinyScale
	scale.MaxRounds = 10
	cmp, err := CompareModes(Search, scale, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(cmp.SpeedUp) || cmp.SpeedUp <= 0 {
		t.Fatalf("speedup %v", cmp.SpeedUp)
	}
	if cmp.TargetMetric <= 0 {
		t.Fatalf("target %v", cmp.TargetMetric)
	}
}

// TestSpecServerLRDefaults: domains without an explicit server LR get 1.
func TestSpecServerLRDefaults(t *testing.T) {
	adsSpec, _ := SpecFor(Ads)
	cfg := AsyncConfig(adsSpec, tinyScale, 1)
	if cfg.ServerLR != 1 {
		t.Fatalf("ads server lr %v", cfg.ServerLR)
	}
	msgSpec, _ := SpecFor(Messaging)
	cfg2 := AsyncConfig(msgSpec, tinyScale, 1)
	if cfg2.ServerLR != 4 {
		t.Fatalf("messaging server lr %v", cfg2.ServerLR)
	}
	if _, err := model.New(msgSpec.Kind, 1); err != nil {
		t.Fatal(err)
	}
}
