package core

import (
	"math"
	"testing"

	"flint/internal/model"
)

// tinyScale keeps core tests fast.
var tinyScale = Scale{Clients: 90, TestRecords: 900, TraceDays: 5, MaxRounds: 14, EvalEvery: 4, MaxShardExamples: 120}

func TestSpecsResolve(t *testing.T) {
	for _, d := range Domains {
		spec, err := SpecFor(d)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Kind == "" || spec.Metric == "" || spec.Schedule == nil {
			t.Fatalf("incomplete spec for %s: %+v", d, spec)
		}
	}
	if _, err := SpecFor(Domain("gaming")); err == nil {
		t.Fatal("unknown domain must fail")
	}
	if _, err := NewGenerator(Domain("gaming"), tinyScale, 1); err == nil {
		t.Fatal("unknown generator must fail")
	}
}

func TestModelAssignmentsMatchPaper(t *testing.T) {
	// §4 picks model B for ads, C for messaging, A (low-latency) for search.
	checks := map[Domain]model.Kind{Ads: model.KindB, Messaging: model.KindC, Search: model.KindA}
	for d, want := range checks {
		spec, err := SpecFor(d)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Kind != want {
			t.Fatalf("%s uses %s, paper uses %s", d, spec.Kind, want)
		}
	}
}

func TestBuildEnvironment(t *testing.T) {
	spec, _ := SpecFor(Ads)
	env, gen, err := BuildEnvironment(spec, tinyScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if gen.NumClients() != tinyScale.Clients {
		t.Fatalf("generator clients %d", gen.NumClients())
	}
	if env.EvalSet.Len() < tinyScale.TestRecords {
		t.Fatalf("eval set %d", env.EvalSet.Len())
	}
}

func TestRunCaseStudyAds(t *testing.T) {
	res, err := RunCaseStudy(Ads, tinyScale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseRate <= 0 {
		t.Fatal("base rate missing for an AUPR domain")
	}
	// Both trainers must beat chance-level AUPR (= the base rate).
	if res.CentralizedMetric <= res.BaseRate+0.04 {
		t.Fatalf("centralized AUPR %v barely above base rate %v", res.CentralizedMetric, res.BaseRate)
	}
	if res.FLMetric <= res.BaseRate+0.01 {
		t.Fatalf("FL AUPR %v at chance level (base %v)", res.FLMetric, res.BaseRate)
	}
	if res.TrainingVTimeSec <= 0 {
		t.Fatal("no training time recorded")
	}
	// Table 4's shape: FL within ±60% of centralized at this tiny scale
	// (the paper's percent-level parity needs production-scale rounds).
	if math.Abs(res.PerfDiffPct) > 60 {
		t.Fatalf("perf diff %v%% implausibly large", res.PerfDiffPct)
	}
}

func TestRunCaseStudySearchUsesNDCG(t *testing.T) {
	res, err := RunCaseStudy(Search, tinyScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric != model.MetricNDCG {
		t.Fatalf("metric %s", res.Metric)
	}
	if res.FLMetric <= 0 || res.FLMetric > 1 {
		t.Fatalf("NDCG %v out of range", res.FLMetric)
	}
}

func TestCompareModes(t *testing.T) {
	cmp, err := CompareModes(Ads, tinyScale, 9, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SpeedUp <= 0 {
		t.Fatalf("speedup %v", cmp.SpeedUp)
	}
	if cmp.AsyncTasksStarted <= 0 || cmp.AsyncComputeSec <= 0 {
		t.Fatalf("async accounting: %+v", cmp)
	}
	if cmp.SyncReport == nil || cmp.AsyncReport == nil {
		t.Fatal("reports missing")
	}
	if _, err := CompareModes(Ads, tinyScale, 9, 0); err == nil {
		t.Fatal("bad headroom must fail")
	}
}

func TestRunLRStudy(t *testing.T) {
	scale := tinyScale
	scale.MaxRounds = 8
	schedules := []model.Schedule{
		model.ExpDecayLR{Base: 0.12, Rate: 0.9, DecaySteps: 10},
		model.ExpDecayLR{Base: 0.5, Rate: 0.98, DecaySteps: 10},
	}
	out, err := RunLRStudy(scale, schedules, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("schedules in study: %d", len(out))
	}
	for name, trials := range out {
		if len(trials) != 2 {
			t.Fatalf("%s trials: %d", name, len(trials))
		}
		for _, tr := range trials {
			if len(tr.Metrics) == 0 {
				t.Fatalf("%s produced no metric series", name)
			}
		}
	}
	if _, err := RunLRStudy(scale, schedules, 0, 1); err == nil {
		t.Fatal("zero trials must fail")
	}
}

func TestPaperExpectations(t *testing.T) {
	if len(PaperExpectations) < 30 {
		t.Fatalf("expectations registry too small: %d", len(PaperExpectations))
	}
	t4 := PaperValuesFor("table4")
	if len(t4) != 6 {
		t.Fatalf("table4 expectations: %d", len(t4))
	}
	for _, v := range PaperExpectations {
		if v.Experiment == "" || v.Name == "" || v.Unit == "" {
			t.Fatalf("incomplete expectation: %+v", v)
		}
	}
	if got := PaperValuesFor("nothing"); got != nil {
		t.Fatal("unknown experiment should return nil")
	}
}
