package partition

import (
	"math"
	"path/filepath"
	"testing"

	"flint/internal/data"
)

func adsShards(t *testing.T, clients int) []data.ClientShard {
	t.Helper()
	g, err := data.NewAdsGenerator(data.DefaultAdsConfig(clients, 17))
	if err != nil {
		t.Fatal(err)
	}
	return g.GenerateClients(clients)
}

func TestComputeStats(t *testing.T) {
	shards := []data.ClientShard{
		{ClientID: 1, Examples: []*data.Example{{Label: 1}, {Label: 0}}},
		{ClientID: 2, Examples: []*data.Example{{Label: 0}, {Label: 0}, {Label: 0}, {Label: 0}}},
	}
	s := ComputeStats("test", shards, 30)
	if s.ClientPop != 2 || s.MaxRecords != 4 || s.AvgRecords != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if math.Abs(s.LabelRatio-1.0/6) > 1e-12 {
		t.Fatalf("label ratio %v", s.LabelRatio)
	}
	if s.LookbackDays != 30 {
		t.Fatalf("lookback %d", s.LookbackDays)
	}
	if s.String() == "" {
		t.Fatal("stats must print")
	}
}

func TestQuantityStatsFullScaleShape(t *testing.T) {
	// Dataset C at meaningful scale: mean must land near the paper's 1.53
	// and max far below the messaging/ads maxima.
	s, err := QuantityStats("datasetC", data.SearchQuantity, 500000, 0.06, 61, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgRecords < 1.2 || s.AvgRecords > 2.2 {
		t.Fatalf("search avg %v far from 1.53", s.AvgRecords)
	}
	if s.MaxRecords > 406 {
		t.Fatalf("search max %d exceeds cap", s.MaxRecords)
	}
	if _, err := QuantityStats("x", data.SearchQuantity, 0, 0, 0, 1); err == nil {
		t.Fatal("zero clients must error")
	}
}

func TestByFieldGroupsAndSorts(t *testing.T) {
	ds := &data.Dataset{Examples: []*data.Example{
		{ClientID: 5}, {ClientID: 1}, {ClientID: 5}, {ClientID: 3},
	}}
	shards := ByField(ds)
	if len(shards) != 3 {
		t.Fatalf("got %d shards", len(shards))
	}
	if shards[0].ClientID != 1 || shards[1].ClientID != 3 || shards[2].ClientID != 5 {
		t.Fatalf("shards not sorted: %v %v %v", shards[0].ClientID, shards[1].ClientID, shards[2].ClientID)
	}
	if len(shards[2].Examples) != 2 {
		t.Fatalf("client 5 should have 2 records")
	}
}

func TestDirichletSkew(t *testing.T) {
	// Build a balanced dataset, then verify small alpha yields heavily
	// skewed per-client label ratios while large alpha stays mixed.
	mk := func() *data.Dataset {
		ds := &data.Dataset{}
		for i := 0; i < 20000; i++ {
			ex := &data.Example{}
			if i%2 == 0 {
				ex.Label = 1
			}
			ds.Examples = append(ds.Examples, ex)
		}
		return ds
	}
	q := data.QuantityModel{Mu: 3.5, Sigma: 0.3, Min: 5, Cap: 100}

	skewed, err := Dirichlet(mk(), DirichletConfig{Clients: 100, Alpha: 0.05, Quantity: q, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Dirichlet(mk(), DirichletConfig{Clients: 100, Alpha: 100, Quantity: q, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	extremeFrac := func(shards []data.ClientShard) float64 {
		extreme := 0
		for _, s := range shards {
			ds := data.Dataset{Examples: s.Examples}
			r := ds.LabelRatio()
			if r < 0.1 || r > 0.9 {
				extreme++
			}
		}
		return float64(extreme) / float64(len(shards))
	}
	if ef := extremeFrac(skewed); ef < 0.5 {
		t.Fatalf("alpha=0.05 should give mostly extreme clients, got %.2f", ef)
	}
	if ef := extremeFrac(mixed); ef > 0.1 {
		t.Fatalf("alpha=100 should give mixed clients, got %.2f", ef)
	}
}

func TestDirichletValidation(t *testing.T) {
	ds := &data.Dataset{Examples: []*data.Example{{}}}
	q := data.QuantityModel{Mu: 1, Sigma: 0.1, Min: 1}
	if _, err := Dirichlet(ds, DirichletConfig{Clients: 0, Alpha: 1, Quantity: q}); err == nil {
		t.Fatal("zero clients must fail")
	}
	if _, err := Dirichlet(ds, DirichletConfig{Clients: 1, Alpha: 0, Quantity: q}); err == nil {
		t.Fatal("zero alpha must fail")
	}
	if _, err := Dirichlet(&data.Dataset{}, DirichletConfig{Clients: 1, Alpha: 1, Quantity: q}); err == nil {
		t.Fatal("empty dataset must fail")
	}
}

func TestDirichletConservation(t *testing.T) {
	// No example may be duplicated across shards.
	ds := &data.Dataset{}
	for i := 0; i < 1000; i++ {
		ds.Examples = append(ds.Examples, &data.Example{QueryID: int64(i), Label: float64(i % 2)})
	}
	shards, err := Dirichlet(ds, DirichletConfig{
		Clients: 50, Alpha: 0.5,
		Quantity: data.QuantityModel{Mu: 3, Sigma: 0.5, Min: 1, Cap: 100}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, s := range shards {
		for _, ex := range s.Examples {
			if seen[ex.QueryID] {
				t.Fatalf("example %d assigned twice", ex.QueryID)
			}
			seen[ex.QueryID] = true
			if ex.ClientID != s.ClientID {
				t.Fatal("clone must be re-stamped with shard client id")
			}
		}
	}
}

func TestRoundRobin(t *testing.T) {
	shards := adsShards(t, 23)
	parts, err := RoundRobin(shards, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("%d partitions", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.NumClients()
		if p.NumRecords() <= 0 {
			t.Fatal("empty partition")
		}
	}
	if total != 23 {
		t.Fatalf("clients lost: %d", total)
	}
	// Balance: max-min client count across executors must be <= 1.
	lo, hi := parts[0].NumClients(), parts[0].NumClients()
	for _, p := range parts {
		if p.NumClients() < lo {
			lo = p.NumClients()
		}
		if p.NumClients() > hi {
			hi = p.NumClients()
		}
	}
	if hi-lo > 1 {
		t.Fatalf("imbalanced: %d..%d", lo, hi)
	}
	if _, err := RoundRobin(shards, 0); err == nil {
		t.Fatal("zero executors must fail")
	}
}

func TestPartitionFileRoundTrip(t *testing.T) {
	shards := adsShards(t, 6)
	parts, err := RoundRobin(shards, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := WriteAll(parts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("%d paths", len(paths))
	}
	got, err := ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClients() != parts[0].NumClients() || got.NumRecords() != parts[0].NumRecords() {
		t.Fatalf("round-trip mismatch: %d/%d vs %d/%d",
			got.NumClients(), got.NumRecords(), parts[0].NumClients(), parts[0].NumRecords())
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.gob")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestTable2StatsFromAdsGenerator(t *testing.T) {
	// End-to-end: generate, partition by field, compute stats — the
	// pipeline behind Table 2's Dataset A column (down-scaled).
	shards := adsShards(t, 400)
	ds := &data.Dataset{}
	for _, s := range shards {
		ds.Examples = append(ds.Examples, s.Examples...)
	}
	regrouped := ByField(ds)
	stats := ComputeStats("datasetA", regrouped, 90)
	if stats.ClientPop != 400 {
		t.Fatalf("pop %d", stats.ClientPop)
	}
	if stats.StdRecords < stats.AvgRecords {
		t.Fatalf("ads quantity must be heavy-tailed: avg %.1f std %.1f", stats.AvgRecords, stats.StdRecords)
	}
	if stats.LabelRatio < 0.15 || stats.LabelRatio > 0.45 {
		t.Fatalf("label ratio %v far from 0.28", stats.LabelRatio)
	}
}
