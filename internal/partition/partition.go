// Package partition implements the paper's proxy data generator (§3.3): it
// converts a centralized dataset into per-client FL partitions — either by a
// natural partitioning field (obfuscated member/device id) or by synthetic
// Dirichlet label/quantity skew when identifiers must be discarded — and
// writes one partition file per executor rather than one file per client,
// the layout that §3.4 credits for fast random access and a bounded
// namespace on pipeline storage.
package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flint/internal/data"
	"flint/internal/metrics"
)

// Stats are the Table 2 characteristics stored back into the data catalog as
// FL-specific metadata: client population, per-client quantity distribution,
// and label ratio.
type Stats struct {
	Dataset    string
	ClientPop  int
	MaxRecords int
	AvgRecords float64
	StdRecords float64
	LabelRatio float64
	// LookbackDays is catalog metadata describing how much history the
	// centralized dataset spans; carried through from the domain config.
	LookbackDays int
}

// String renders one Table 2 column.
func (s Stats) String() string {
	return fmt.Sprintf("%s: pop=%d max=%d avg=%.2f std=%.2f label=%.2f lookback=%dd",
		s.Dataset, s.ClientPop, s.MaxRecords, s.AvgRecords, s.StdRecords, s.LabelRatio, s.LookbackDays)
}

// ComputeStats derives Table 2 metadata from materialized client shards.
func ComputeStats(name string, shards []data.ClientShard, lookbackDays int) Stats {
	quantities := make([]float64, len(shards))
	var pos, total int
	for i, s := range shards {
		quantities[i] = float64(len(s.Examples))
		total += len(s.Examples)
		for _, ex := range s.Examples {
			if ex.Positive() {
				pos++
			}
		}
	}
	sum := metrics.Summarize(quantities)
	st := Stats{
		Dataset:      name,
		ClientPop:    len(shards),
		MaxRecords:   int(sum.Max),
		AvgRecords:   sum.Mean,
		StdRecords:   sum.Std,
		LookbackDays: lookbackDays,
	}
	if total > 0 {
		st.LabelRatio = float64(pos) / float64(total)
	}
	return st
}

// QuantityStats computes the population-scale quantity distribution without
// materializing records — this is how the Table 2 bench reproduces the
// 16.4M-client search dataset's statistics in seconds.
func QuantityStats(name string, q data.QuantityModel, clients int, labelRatio float64, lookbackDays int, seed int64) (Stats, error) {
	if clients <= 0 {
		return Stats{}, fmt.Errorf("partition: clients must be positive, got %d", clients)
	}
	if err := q.Validate(); err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	var sum, sq float64
	maxQ := 0
	for i := 0; i < clients; i++ {
		n := q.Sample(rng)
		sum += float64(n)
		sq += float64(n) * float64(n)
		if n > maxQ {
			maxQ = n
		}
	}
	mean := sum / float64(clients)
	variance := sq/float64(clients) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{
		Dataset:      name,
		ClientPop:    clients,
		MaxRecords:   maxQ,
		AvgRecords:   mean,
		StdRecords:   math.Sqrt(variance),
		LabelRatio:   labelRatio,
		LookbackDays: lookbackDays,
	}, nil
}

// ByField groups a centralized dataset into client shards using the natural
// partitioning field (Example.ClientID), the paper's preferred strategy
// "when available". Shards come back sorted by client id for determinism.
func ByField(ds *data.Dataset) []data.ClientShard {
	groups := ds.ByClient()
	ids := make([]int64, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	shards := make([]data.ClientShard, len(ids))
	for i, id := range ids {
		shards[i] = data.ClientShard{ClientID: id, Examples: groups[id]}
	}
	return shards
}

// DirichletConfig controls synthetic partitioning "when privacy is a
// concern" and the client identifier is discarded (§3.3): label skew via a
// per-client Dirichlet(Alpha) over classes, and quantity skew via the
// domain quantity model.
type DirichletConfig struct {
	Clients int
	// Alpha is the Dirichlet concentration; smaller = more label skew.
	Alpha float64
	// Quantity injects per-client record-count skew.
	Quantity data.QuantityModel
	Seed     int64
}

// Validate reports configuration errors.
func (c DirichletConfig) Validate() error {
	if c.Clients <= 0 {
		return fmt.Errorf("partition: dirichlet clients must be positive, got %d", c.Clients)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("partition: dirichlet alpha must be positive, got %v", c.Alpha)
	}
	return c.Quantity.Validate()
}

// Dirichlet splits the dataset into Clients shards with label and quantity
// skew. Examples are consumed without replacement per label class; the
// returned shards cover a subset of the dataset when quantity draws exceed
// the available pool.
func Dirichlet(ds *data.Dataset, cfg DirichletConfig) ([]data.ClientShard, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("partition: dirichlet over empty dataset")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pools per binary class, shuffled for unbiased consumption.
	var pools [2][]*data.Example
	for _, ex := range ds.Examples {
		if ex.Positive() {
			pools[1] = append(pools[1], ex)
		} else {
			pools[0] = append(pools[0], ex)
		}
	}
	for c := range pools {
		rng.Shuffle(len(pools[c]), func(i, j int) {
			pools[c][i], pools[c][j] = pools[c][j], pools[c][i]
		})
	}
	next := [2]int{}
	shards := make([]data.ClientShard, 0, cfg.Clients)
	for k := 0; k < cfg.Clients; k++ {
		id := int64(k)
		want := cfg.Quantity.Sample(rng)
		// Per-client class mixture ~ Dirichlet(alpha) over {neg, pos}.
		a := gammaSample(rng, cfg.Alpha)
		b := gammaSample(rng, cfg.Alpha)
		posFrac := 0.5
		if a+b > 0 {
			posFrac = b / (a + b)
		}
		shard := data.ClientShard{ClientID: id}
		for i := 0; i < want; i++ {
			c := 0
			if rng.Float64() < posFrac {
				c = 1
			}
			if next[c] >= len(pools[c]) {
				c = 1 - c // fall back to the other pool
				if next[c] >= len(pools[c]) {
					break // dataset exhausted
				}
			}
			ex := pools[c][next[c]]
			next[c]++
			clone := *ex
			clone.ClientID = id
			shard.Examples = append(shard.Examples, &clone)
		}
		if len(shard.Examples) > 0 {
			shards = append(shards, shard)
		}
		if next[0] >= len(pools[0]) && next[1] >= len(pools[1]) {
			break
		}
	}
	return shards, nil
}

// gammaSample draws from Gamma(shape, 1); see data.MessagingGenerator for
// the same Marsaglia-Tsang construction.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
