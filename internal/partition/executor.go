package partition

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flint/internal/data"
)

// ExecutorPartition is one executor's slice of the proxy dataset: a set of
// unique clients the executor loads into memory for fast random access
// during simulation (§3.4 "Scalability and Fault Tolerance").
type ExecutorPartition struct {
	Executor int
	Shards   []data.ClientShard
}

// NumClients returns the client count in the partition.
func (p *ExecutorPartition) NumClients() int { return len(p.Shards) }

// NumRecords returns the record count in the partition.
func (p *ExecutorPartition) NumRecords() int {
	n := 0
	for _, s := range p.Shards {
		n += len(s.Examples)
	}
	return n
}

// RoundRobin assigns client shards to executors "by client id in a
// round-robin fashion" (§4.1), producing one partition per executor rather
// than one file per client. This bounds the storage namespace and improves
// compression by batching many clients per file.
func RoundRobin(shards []data.ClientShard, executors int) ([]*ExecutorPartition, error) {
	if executors <= 0 {
		return nil, fmt.Errorf("partition: executors must be positive, got %d", executors)
	}
	parts := make([]*ExecutorPartition, executors)
	for i := range parts {
		parts[i] = &ExecutorPartition{Executor: i}
	}
	for i, s := range shards {
		p := parts[i%executors]
		p.Shards = append(p.Shards, s)
	}
	return parts, nil
}

// WriteFile persists the partition with gob encoding.
func (p *ExecutorPartition) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("partition: write %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		f.Close()
		return fmt.Errorf("partition: encode %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("partition: flush %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("partition: close %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a partition written by WriteFile.
func ReadFile(path string) (*ExecutorPartition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("partition: read %s: %w", path, err)
	}
	defer f.Close()
	return decodePartition(bufio.NewReader(f), path)
}

func decodePartition(r io.Reader, name string) (*ExecutorPartition, error) {
	var p ExecutorPartition
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("partition: decode %s: %w", name, err)
	}
	return &p, nil
}

// WriteAll writes every partition into dir as partition-NNN.gob and returns
// the file paths.
func WriteAll(parts []*ExecutorPartition, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("partition: mkdir %s: %w", dir, err)
	}
	paths := make([]string, len(parts))
	for i, p := range parts {
		path := filepath.Join(dir, fmt.Sprintf("partition-%03d.gob", p.Executor))
		if err := p.WriteFile(path); err != nil {
			return nil, err
		}
		paths[i] = path
	}
	return paths, nil
}
