package metrics

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for client data
// quantities (Table 2), device benchmark times (Table 5) and multi-trial
// model metrics (Table 4, Fig 10).
type Summary struct {
	Count  int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of sorted xs using linear
// interpolation between closest ranks. xs must be sorted ascending.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram buckets xs into n equal-width bins over [min,max] and returns
// the bin edges (n+1 values) and counts (n values). Used to render Fig 2 and
// Fig 5 series. Degenerate ranges put everything in the first bin.
func Histogram(xs []float64, n int) (edges []float64, counts []int) {
	if n <= 0 {
		n = 1
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	if len(xs) == 0 {
		return edges, counts
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	if width == 0 {
		counts[0] = len(xs)
		return edges, counts
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return edges, counts
}

// MedianOf returns the median of xs without requiring a pre-sorted input.
func MedianOf(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, 0.5)
}
