// Package metrics implements the offline evaluation metrics used throughout
// the paper's case studies: Area Under the Precision-Recall curve (AUPR, used
// for the ads and messaging domains), ROC-AUC, Normalized Discounted
// Cumulative Gain (NDCG, used for search ranking), accuracy, log-loss, and
// the summary statistics (mean/std/median/max) reported in Tables 2–5.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// scoredLabel pairs a model score with its binary ground-truth label.
type scoredLabel struct {
	score float64
	label bool
}

func sortedByScoreDesc(scores []float64, labels []bool) ([]scoredLabel, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(labels))
	}
	pairs := make([]scoredLabel, len(scores))
	for i := range scores {
		pairs[i] = scoredLabel{scores[i], labels[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].score > pairs[j].score })
	return pairs, nil
}

// AUPR returns the area under the precision-recall curve computed by the
// standard step-wise interpolation over descending-score thresholds
// (average-precision formulation). It errors if there are no positives or
// the inputs are mismatched.
func AUPR(scores []float64, labels []bool) (float64, error) {
	pairs, err := sortedByScoreDesc(scores, labels)
	if err != nil {
		return 0, err
	}
	var positives int
	for _, p := range pairs {
		if p.label {
			positives++
		}
	}
	if positives == 0 {
		return 0, fmt.Errorf("metrics: AUPR undefined with no positive labels")
	}
	var tp, fp int
	var ap float64
	i := 0
	for i < len(pairs) {
		// Process ties as a single threshold to keep AUPR order-independent.
		j := i
		tiePos, tieNeg := 0, 0
		for j < len(pairs) && pairs[j].score == pairs[i].score {
			if pairs[j].label {
				tiePos++
			} else {
				tieNeg++
			}
			j++
		}
		tp += tiePos
		fp += tieNeg
		if tiePos > 0 {
			precision := float64(tp) / float64(tp+fp)
			ap += precision * float64(tiePos)
		}
		i = j
	}
	return ap / float64(positives), nil
}

// ROCAUC returns the area under the ROC curve via the rank-statistic
// (Mann-Whitney U) formulation, handling ties with midranks.
func ROCAUC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(labels))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	var nPos, nNeg int
	rankSumPos := 0.0
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		// Midrank for the tie group [i, j) using 1-based ranks.
		midrank := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if labels[idx[k]] {
				rankSumPos += midrank
			}
		}
		i = j
	}
	for _, l := range labels {
		if l {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("metrics: ROCAUC undefined with %d positives, %d negatives", nPos, nNeg)
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// NDCG returns NDCG@k for one ranked list. relevances must be listed in the
// order the model ranked the documents (best-scored first); k <= 0 means use
// the full list. Returns 0 when all relevances are zero.
func NDCG(relevances []float64, k int) float64 {
	if k <= 0 || k > len(relevances) {
		k = len(relevances)
	}
	dcg := dcgAt(relevances, k)
	ideal := append([]float64(nil), relevances...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := dcgAt(ideal, k)
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func dcgAt(rels []float64, k int) float64 {
	var s float64
	for i := 0; i < k && i < len(rels); i++ {
		s += (math.Pow(2, rels[i]) - 1) / math.Log2(float64(i)+2)
	}
	return s
}

// Accuracy returns the fraction of predictions whose thresholded score
// (>= 0.5) matches the label.
func Accuracy(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("metrics: accuracy of empty set")
	}
	correct := 0
	for i, s := range scores {
		if (s >= 0.5) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(scores)), nil
}

// LogLoss returns the mean binary cross-entropy of the scores.
func LogLoss(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("metrics: logloss of empty set")
	}
	const eps = 1e-12
	var total float64
	for i, p := range scores {
		p = math.Max(eps, math.Min(1-eps, p))
		if labels[i] {
			total -= math.Log(p)
		} else {
			total -= math.Log(1 - p)
		}
	}
	return total / float64(len(scores)), nil
}
