package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAUPRPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	got, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect ranking AUPR = %v, want 1", got)
	}
}

func TestAUPRWorstRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{false, false, true, true}
	got, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Positives found at ranks 3 and 4: AP = (1/3 + 2/4)/2.
	want := (1.0/3 + 2.0/4) / 2
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("worst ranking AUPR = %v, want %v", got, want)
	}
}

func TestAUPRNoPositives(t *testing.T) {
	if _, err := AUPR([]float64{0.1}, []bool{false}); err == nil {
		t.Fatal("expected error with no positives")
	}
}

func TestAUPRMismatchedLens(t *testing.T) {
	if _, err := AUPR([]float64{0.1, 0.2}, []bool{true}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
}

func TestAUPRTiesOrderIndependent(t *testing.T) {
	// With all scores tied, AUPR must equal the base rate regardless of
	// input order.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	l1 := []bool{true, false, true, false}
	l2 := []bool{false, false, true, true}
	a1, err := AUPR(scores, l1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AUPR(scores, l2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a1, a2, 1e-12) {
		t.Fatalf("tie handling is order-dependent: %v vs %v", a1, a2)
	}
	if !almostEqual(a1, 0.5, 1e-12) {
		t.Fatalf("all-tied AUPR should equal base rate 0.5, got %v", a1)
	}
}

func TestAUPRRandomScoresNearBaseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	baseRate := 0.3
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < baseRate
	}
	got, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-baseRate) > 0.03 {
		t.Fatalf("random-score AUPR = %v, want ≈ base rate %v", got, baseRate)
	}
}

func TestROCAUC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	got, err := ROCAUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect ROCAUC = %v", got)
	}
	labels = []bool{false, false, true, true}
	got, _ = ROCAUC(scores, labels)
	if !almostEqual(got, 0, 1e-12) {
		t.Fatalf("inverted ROCAUC = %v", got)
	}
	// All tied scores → 0.5.
	got, _ = ROCAUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false})
	if !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("tied ROCAUC = %v, want 0.5", got)
	}
}

func TestROCAUCErrors(t *testing.T) {
	if _, err := ROCAUC([]float64{1}, []bool{true}); err == nil {
		t.Fatal("expected error with single class")
	}
	if _, err := ROCAUC([]float64{1, 2}, []bool{true}); err == nil {
		t.Fatal("expected error on mismatch")
	}
}

func TestROCAUCComplementSymmetry(t *testing.T) {
	// Property: negating scores flips AUC to 1-AUC.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(50)
		scores := make([]float64, n)
		neg := make([]float64, n)
		labels := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			neg[i] = -scores[i]
			labels[i] = rng.Intn(2) == 0
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			continue
		}
		a, err := ROCAUC(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ROCAUC(neg, labels)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(a+b, 1, 1e-9) {
			t.Fatalf("AUC symmetry violated: %v + %v != 1", a, b)
		}
	}
}

func TestNDCG(t *testing.T) {
	// Ideal order → 1.
	if got := NDCG([]float64{3, 2, 1, 0}, 0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("ideal NDCG = %v", got)
	}
	// Non-ideal order strictly less than 1.
	if got := NDCG([]float64{0, 1, 2, 3}, 0); got >= 1 {
		t.Fatalf("inverted NDCG = %v, want < 1", got)
	}
	// All-zero relevance → 0.
	if got := NDCG([]float64{0, 0}, 0); got != 0 {
		t.Fatalf("zero-relevance NDCG = %v", got)
	}
	// k truncation: only first k items matter for DCG.
	full := NDCG([]float64{3, 0, 0, 0}, 1)
	if !almostEqual(full, 1, 1e-12) {
		t.Fatalf("NDCG@1 with best doc first = %v", full)
	}
}

func TestNDCGBoundsProperty(t *testing.T) {
	f := func(rels []float64) bool {
		for i, r := range rels {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return true
			}
			rels[i] = math.Mod(math.Abs(r), 5)
		}
		g := NDCG(rels, 0)
		return g >= 0 && g <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyAndLogLoss(t *testing.T) {
	scores := []float64{0.9, 0.4, 0.6, 0.1}
	labels := []bool{true, false, false, false}
	acc, err := Accuracy(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acc, 0.75, 1e-12) {
		t.Fatalf("accuracy = %v", acc)
	}
	ll, err := LogLoss(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ll <= 0 || math.IsInf(ll, 0) {
		t.Fatalf("logloss = %v", ll)
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("empty accuracy should error")
	}
	if _, err := LogLoss(nil, nil); err == nil {
		t.Fatal("empty logloss should error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summarize: %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
	zero := Summarize(nil)
	if zero.Count != 0 {
		t.Fatalf("empty summary: %+v", zero)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Quantile(sorted, 0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 40 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(sorted, 0.5); got != 25 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("histogram shape: %d edges %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram loses mass: %d", total)
	}
	// Degenerate range.
	_, counts = Histogram([]float64{5, 5, 5}, 4)
	if counts[0] != 3 {
		t.Fatalf("degenerate histogram: %v", counts)
	}
	// Empty input.
	_, counts = Histogram(nil, 3)
	for _, c := range counts {
		if c != 0 {
			t.Fatal("empty histogram must have zero counts")
		}
	}
}

func TestMedianOf(t *testing.T) {
	if got := MedianOf([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median = %v", got)
	}
}
