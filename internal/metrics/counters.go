package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or explicitly set) int64 gauge safe
// for concurrent use. The zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Add adds n and returns the new value.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Set overwrites the value (for gauges like queue depth).
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterSet is a named registry of counters for a serving component. Lookups
// after first use are lock-free on the Counter itself; creation is guarded.
type CounterSet struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounterSet returns an empty counter registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]*Counter)}
}

// Counter returns the named counter, creating it on first use.
func (s *CounterSet) Counter(name string) *Counter {
	s.mu.RLock()
	c, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.m[name]; ok {
		return c
	}
	c = &Counter{}
	s.m[name] = c
	return c
}

// Snapshot returns a point-in-time copy of every counter value.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.m))
	for name, c := range s.m {
		out[name] = c.Value()
	}
	return out
}

// Rollup sums counter snapshots key-wise — the fleet-wide view of a set
// of per-job counter sets. Keys missing from a snapshot contribute zero,
// so heterogeneous jobs (different pre-registered sets) still roll up.
func Rollup(snaps ...map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range snaps {
		for name, v := range s {
			out[name] += v
		}
	}
	return out
}

// Names lists registered counter names sorted, for stable reporting.
func (s *CounterSet) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
