package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	s := NewCounterSet()
	s.Counter("a").Inc()
	s.Counter("a").Add(4)
	s.Counter("b").Set(7)
	if got := s.Counter("a").Value(); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	snap := s.Snapshot()
	if snap["a"] != 5 || snap["b"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	s := NewCounterSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Counter("shared").Inc()
				s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
}
