package forecast

import (
	"math"
	"testing"

	"flint/internal/availability"
	"flint/internal/fedsim"
)

func sampleReport() *fedsim.Report {
	return &fedsim.Report{
		Mode:            fedsim.Async,
		TotalStarted:    610_000,
		TotalSucceeded:  610_000,
		TotalComputeSec: 620 * 3600, // 25.9 days of client compute (§3.5)
		FinalVTime:      48 * 3600,
	}
}

func TestBudgetFromReport(t *testing.T) {
	rep := sampleReport()
	rep.TotalStragglers = 61_000
	b, err := BudgetFromReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if b.ComputeSec != 620*3600 {
		t.Fatalf("compute %v", b.ComputeSec)
	}
	if math.Abs(b.WastedFraction-0.1) > 1e-9 {
		t.Fatalf("wasted %v", b.WastedFraction)
	}
	if b.EnergyWh <= 0 {
		t.Fatal("energy must be positive")
	}
	if _, err := BudgetFromReport(nil); err == nil {
		t.Fatal("nil report must fail")
	}
}

func TestTEELoadMatchesPaperMath(t *testing.T) {
	// §3.5: 610k tasks / 48h → 3.53 upd/s; × 0.76 MB → 2.68 MB/s.
	th, err := TEELoad(sampleReport(), 760_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th.UpdatesPerSec-3.53) > 0.02 {
		t.Fatalf("upd/s %v", th.UpdatesPerSec)
	}
	if math.Abs(th.BytesPerSec/1e6-2.68) > 0.02 {
		t.Fatalf("MB/s %v", th.BytesPerSec/1e6)
	}
	if _, err := TEELoad(nil, 1); err == nil {
		t.Fatal("nil report must fail")
	}
	if _, err := TEELoad(&fedsim.Report{}, 1); err == nil {
		t.Fatal("zero vtime must fail")
	}
}

func TestPlanInfra(t *testing.T) {
	series := availability.Series{Normalized: []float64{0.1, 0.5, 1.0, 0.4}}
	plan, err := PlanInfra(sampleReport(), series, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PeakToMean <= 1 {
		t.Fatalf("peak/mean %v must exceed 1 for a fluctuating load", plan.PeakToMean)
	}
	if plan.PeakUpdatesPerSec <= plan.MeanUpdatesPerSec {
		t.Fatal("peak must exceed mean")
	}
	if plan.Workers < 1 {
		t.Fatalf("workers %d", plan.Workers)
	}
	// Flat load → multiplier 1.
	flat := availability.Series{Normalized: []float64{1, 1, 1}}
	p2, err := PlanInfra(sampleReport(), flat, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2.PeakToMean-1) > 1e-9 {
		t.Fatalf("flat peak/mean %v", p2.PeakToMean)
	}
	if _, err := PlanInfra(sampleReport(), series, 0); err == nil {
		t.Fatal("zero capacity must fail")
	}
	if _, err := PlanInfra(nil, series, 1); err == nil {
		t.Fatal("nil report must fail")
	}
}

func TestEstimateCarbon(t *testing.T) {
	b := DeviceBudget{EnergyWh: 100}
	c, err := EstimateCarbon(b, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c.DatacenterWh != 25 || c.Multiplier != 4 {
		t.Fatalf("carbon: %+v", c)
	}
	if _, err := EstimateCarbon(b, 0); err == nil {
		t.Fatal("bad efficiency must fail")
	}
	if _, err := EstimateCarbon(b, 2); err == nil {
		t.Fatal("efficiency > 1 must fail")
	}
}
