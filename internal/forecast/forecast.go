// Package forecast implements §3.5's resource projections: total device
// compute consumed by an FL job, aggregator (TEE) throughput and bandwidth
// needs, cloud worker sizing against availability load swings, and a
// carbon-footprint proxy for edge training.
package forecast

import (
	"fmt"
	"math"

	"flint/internal/aggregator"
	"flint/internal/availability"
	"flint/internal/fedsim"
)

// DeviceBudget summarizes the edge resource bill of one training job —
// "a device-cloud platform should account for total edge resource
// utilization in its notion of budget".
type DeviceBudget struct {
	// ComputeSec is Σ taskDuration(k) over all clients that performed
	// training (Table 3's "client computation").
	ComputeSec float64
	// TasksStarted includes failed and stale tasks.
	TasksStarted int
	// WastedFraction is the share of started tasks whose work was
	// discarded (stragglers, stale, interrupted, failed).
	WastedFraction float64
	// EnergyWh estimates device energy at the configured draw.
	EnergyWh float64
}

// DeviceDrawWatts is the assumed on-device training power draw (a mid-range
// phone under sustained single-core + radio load).
const DeviceDrawWatts = 2.5

// BudgetFromReport derives the device budget from a simulation report.
func BudgetFromReport(rep *fedsim.Report) (DeviceBudget, error) {
	if rep == nil {
		return DeviceBudget{}, fmt.Errorf("forecast: nil report")
	}
	b := DeviceBudget{
		ComputeSec:   rep.TotalComputeSec,
		TasksStarted: rep.TotalStarted,
		EnergyWh:     rep.TotalComputeSec / 3600 * DeviceDrawWatts,
	}
	if rep.TotalStarted > 0 {
		wasted := rep.TotalStragglers + rep.TotalStale + rep.TotalInterrupted + rep.TotalFailed
		b.WastedFraction = float64(wasted) / float64(rep.TotalStarted)
	}
	return b, nil
}

// TEELoad projects the trusted-execution aggregator's ingest requirements,
// reproducing §3.5's math: Task C aggregates 610k tasks in 48 hours →
// 3.53 updates/s × 0.76 MB → 2.68 MB/s.
func TEELoad(rep *fedsim.Report, updateBytes int) (aggregator.TEEThroughput, error) {
	if rep == nil {
		return aggregator.TEEThroughput{}, fmt.Errorf("forecast: nil report")
	}
	if rep.FinalVTime <= 0 {
		return aggregator.TEEThroughput{}, fmt.Errorf("forecast: report has no elapsed virtual time")
	}
	return aggregator.Throughput(rep.TotalSucceeded, updateBytes, rep.FinalVTime)
}

// InfraPlan sizes the cloud-side aggregation service against availability
// load swings (Fig 2): the worker pool must absorb the weekly peak, not the
// mean, or coexisting FL jobs contend (§3.5 "Infrastructure Requirements").
type InfraPlan struct {
	MeanUpdatesPerSec float64
	PeakUpdatesPerSec float64
	// PeakToMean is the provisioning multiplier implied by the trace.
	PeakToMean float64
	// Workers is the worker count needed at peak given per-worker capacity.
	Workers int
}

// PlanInfra combines a job's mean update rate with the availability trace's
// load shape to size the worker pool.
func PlanInfra(rep *fedsim.Report, series availability.Series, updatesPerWorkerSec float64) (InfraPlan, error) {
	if rep == nil {
		return InfraPlan{}, fmt.Errorf("forecast: nil report")
	}
	if updatesPerWorkerSec <= 0 {
		return InfraPlan{}, fmt.Errorf("forecast: worker capacity must be positive, got %v", updatesPerWorkerSec)
	}
	if rep.FinalVTime <= 0 || len(series.Normalized) == 0 {
		return InfraPlan{}, fmt.Errorf("forecast: need elapsed time and a load series")
	}
	mean := float64(rep.TotalSucceeded) / rep.FinalVTime
	var sum float64
	peakNorm := 0.0
	for _, v := range series.Normalized {
		sum += v
		if v > peakNorm {
			peakNorm = v
		}
	}
	meanNorm := sum / float64(len(series.Normalized))
	plan := InfraPlan{MeanUpdatesPerSec: mean}
	if meanNorm > 0 {
		plan.PeakToMean = peakNorm / meanNorm
	}
	plan.PeakUpdatesPerSec = mean * plan.PeakToMean
	plan.Workers = int(math.Ceil(plan.PeakUpdatesPerSec / updatesPerWorkerSec))
	if plan.Workers < 1 {
		plan.Workers = 1
	}
	return plan, nil
}

// Carbon compares edge-training energy against an equivalent centralized
// job, the §3.5 sustainability note: edge training is less energy-efficient
// and has poorer renewable access (Wu et al., 2022).
type Carbon struct {
	DeviceWh     float64
	DatacenterWh float64
	// Multiplier is device/datacenter energy for the same work.
	Multiplier float64
}

// EstimateCarbon assumes the centralized counterpart consumes the job's
// aggregate FLOPs at datacenter efficiency.
func EstimateCarbon(budget DeviceBudget, datacenterEfficiency float64) (Carbon, error) {
	if datacenterEfficiency <= 0 || datacenterEfficiency > 1 {
		return Carbon{}, fmt.Errorf("forecast: datacenter efficiency %v outside (0,1]", datacenterEfficiency)
	}
	c := Carbon{DeviceWh: budget.EnergyWh}
	c.DatacenterWh = budget.EnergyWh * datacenterEfficiency
	if c.DatacenterWh > 0 {
		c.Multiplier = c.DeviceWh / c.DatacenterWh
	}
	return c, nil
}
