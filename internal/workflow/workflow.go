// Package workflow implements the decision workflow of Fig 9: a gated,
// ordered sequence of assessment steps — client data/compute/availability
// understanding, proxy dataset construction, mobile-ready model selection,
// simulation, resource forecasting, and privacy/security review — each of
// which must pass its gate before an FL project reaches production.
package workflow

import (
	"fmt"
	"strings"
	"time"
)

// Status is a step outcome.
type Status string

// Step outcomes.
const (
	Passed  Status = "passed"
	Failed  Status = "failed"
	Skipped Status = "skipped"
)

// Context carries artifacts between steps (availability traces, proxy
// stats, benchmark rows, simulation reports) keyed by name.
type Context struct {
	artifacts map[string]interface{}
}

// NewContext creates an empty artifact context.
func NewContext() *Context {
	return &Context{artifacts: make(map[string]interface{})}
}

// Put stores an artifact.
func (c *Context) Put(key string, v interface{}) { c.artifacts[key] = v }

// Get fetches an artifact.
func (c *Context) Get(key string) (interface{}, bool) {
	v, ok := c.artifacts[key]
	return v, ok
}

// StepResult is one step's report entry.
type StepResult struct {
	Name    string
	Status  Status
	Detail  string
	Elapsed time.Duration
}

// Step is one gated stage of the decision workflow. Run returns a detail
// string and pass/fail; an error aborts the whole workflow (infrastructure
// problem, as opposed to a failed gate).
type Step struct {
	Name string
	Run  func(ctx *Context) (detail string, pass bool, err error)
	// Optional marks steps whose failure does not block the decision
	// (e.g. carbon accounting), recorded but not gating.
	Optional bool
}

// Workflow is an ordered pipeline of steps.
type Workflow struct {
	Name  string
	Steps []Step
}

// Outcome is the full decision record.
type Outcome struct {
	Workflow string
	Results  []StepResult
	// Go is the final ship/no-ship decision: all gating steps passed.
	Go bool
	// FailedGate names the first gating step that failed, if any.
	FailedGate string
}

// Run executes the steps in order against a fresh outcome. Gating failures
// stop execution (later steps are recorded as skipped), mirroring Fig 9's
// flow where each stage feeds the next.
func (w *Workflow) Run(ctx *Context) (Outcome, error) {
	if len(w.Steps) == 0 {
		return Outcome{}, fmt.Errorf("workflow %s: no steps", w.Name)
	}
	out := Outcome{Workflow: w.Name, Go: true}
	blocked := false
	for _, step := range w.Steps {
		if step.Run == nil {
			return Outcome{}, fmt.Errorf("workflow %s: step %s has no Run", w.Name, step.Name)
		}
		if blocked {
			out.Results = append(out.Results, StepResult{Name: step.Name, Status: Skipped})
			continue
		}
		start := time.Now()
		detail, pass, err := step.Run(ctx)
		if err != nil {
			return Outcome{}, fmt.Errorf("workflow %s: step %s: %w", w.Name, step.Name, err)
		}
		res := StepResult{Name: step.Name, Detail: detail, Elapsed: time.Since(start)}
		if pass {
			res.Status = Passed
		} else {
			res.Status = Failed
			if !step.Optional {
				out.Go = false
				out.FailedGate = step.Name
				blocked = true
			}
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

// String renders the outcome as a report.
func (o Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Decision workflow: %s\n", o.Workflow)
	for _, r := range o.Results {
		fmt.Fprintf(&b, "  [%-7s] %-28s %s\n", r.Status, r.Name, r.Detail)
	}
	if o.Go {
		b.WriteString("  DECISION: GO — all gates passed\n")
	} else {
		fmt.Fprintf(&b, "  DECISION: NO-GO — blocked at %q\n", o.FailedGate)
	}
	return b.String()
}
