package workflow

import (
	"errors"
	"strings"
	"testing"
)

func pass(name string) Step {
	return Step{Name: name, Run: func(*Context) (string, bool, error) { return "ok", true, nil }}
}

func fail(name string, optional bool) Step {
	return Step{Name: name, Optional: optional, Run: func(*Context) (string, bool, error) { return "bad", false, nil }}
}

func TestAllPass(t *testing.T) {
	w := &Workflow{Name: "ads", Steps: []Step{pass("a"), pass("b")}}
	out, err := w.Run(NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Go || out.FailedGate != "" {
		t.Fatalf("outcome: %+v", out)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results: %d", len(out.Results))
	}
	if !strings.Contains(out.String(), "GO") {
		t.Fatal("report must state decision")
	}
}

func TestGateBlocks(t *testing.T) {
	w := &Workflow{Name: "x", Steps: []Step{pass("a"), fail("gate", false), pass("never")}}
	out, err := w.Run(NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if out.Go {
		t.Fatal("failed gate must block")
	}
	if out.FailedGate != "gate" {
		t.Fatalf("failed gate: %q", out.FailedGate)
	}
	if out.Results[2].Status != Skipped {
		t.Fatalf("later steps must be skipped, got %s", out.Results[2].Status)
	}
	if !strings.Contains(out.String(), "NO-GO") {
		t.Fatal("report must state no-go")
	}
}

func TestOptionalFailureDoesNotBlock(t *testing.T) {
	w := &Workflow{Name: "x", Steps: []Step{fail("carbon", true), pass("rest")}}
	out, err := w.Run(NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Go {
		t.Fatal("optional failure must not block")
	}
	if out.Results[0].Status != Failed || out.Results[1].Status != Passed {
		t.Fatalf("results: %+v", out.Results)
	}
}

func TestStepErrorAborts(t *testing.T) {
	boom := errors.New("infra down")
	w := &Workflow{Name: "x", Steps: []Step{
		{Name: "bad", Run: func(*Context) (string, bool, error) { return "", false, boom }},
	}}
	if _, err := w.Run(NewContext()); err == nil {
		t.Fatal("step error must abort")
	}
}

func TestValidation(t *testing.T) {
	w := &Workflow{Name: "empty"}
	if _, err := w.Run(NewContext()); err == nil {
		t.Fatal("empty workflow must error")
	}
	w2 := &Workflow{Name: "nil", Steps: []Step{{Name: "x"}}}
	if _, err := w2.Run(NewContext()); err == nil {
		t.Fatal("nil Run must error")
	}
}

func TestContextArtifacts(t *testing.T) {
	ctx := NewContext()
	produced := Step{Name: "produce", Run: func(c *Context) (string, bool, error) {
		c.Put("trace", 42)
		return "made trace", true, nil
	}}
	consumed := Step{Name: "consume", Run: func(c *Context) (string, bool, error) {
		v, ok := c.Get("trace")
		if !ok || v.(int) != 42 {
			return "missing artifact", false, nil
		}
		return "used trace", true, nil
	}}
	w := &Workflow{Name: "chain", Steps: []Step{produced, consumed}}
	out, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Go {
		t.Fatalf("artifact chain failed: %+v", out.Results)
	}
}
