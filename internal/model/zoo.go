package model

import (
	"math/rand"

	"flint/internal/data"
	"flint/internal/tensor"
)

// Architecture dimensions, sized to land on Table 5's parameter counts
// (asserted by tests to within 1%).
const (
	// Model A: Tiny Neural Net, 44→33→1 ≈ 1,519 params.
	tinyDenseDim = 44
	tinyHidden   = 33
	// Model B: MLP w/ sparse features, 4133→45→64→1 ≈ 189,039 params.
	sparseDim     = 4133
	sparseHidden1 = 45
	sparseHidden2 = 64
	// Model C: MLP w/ medium embedding, 6400×32 emb + (32+16)→64→1 ≈ 208,001.
	embedMLPVocab    = 6400
	embedMLPDim      = 32
	embedMLPDenseDim = 16
	embedMLPHidden   = 64
	// Model D: CNN w/ large embedding ≈ 389,873 params.
	embedCNNVocab  = 11600
	embedCNNDim    = 32
	embedCNNConv1  = 64
	embedCNNConv2  = 48
	embedCNNHidden = 64
	embedCNNKernel = 3
	maxSeqLen      = 64
	// Model E: Multi-task MLP, 256→686→686→256, 3 heads ≈ 922,531 params.
	multiTaskDenseDim = 256
	multiTaskHidden   = 686
	multiTaskTrunkOut = 256
	multiTaskHeadDim  = 128
	multiTaskHeads    = 3
)

// runtimeArenaBytes approximates the interpreter memory overhead per graph
// complexity class, the dominant term in Table 5's "Memory" column for
// small models.
const (
	arenaSmall  = 3 << 20  // simple dense graphs
	arenaMedium = 8 << 20  // sequence graphs
	arenaLarge  = 40 << 20 // multi-task graphs
)

// ---------------------------------------------------------------- model A

// tinyNN is Table 5's model A: a dense 44→33→1 binary classifier used for
// low-latency tasks such as search ranking.
type tinyNN struct {
	params, grads tensor.Vector
	l1, l2        *dense
	in, h1, m1    tensor.Vector
	dh1           tensor.Vector
}

func newTinyNN(seed int64) *tinyNN {
	n := (tinyDenseDim*tinyHidden + tinyHidden) + (tinyHidden + 1)
	m := &tinyNN{params: tensor.NewVector(n), grads: tensor.NewVector(n)}
	p, g := &arena{buf: m.params}, &arena{buf: m.grads}
	m.l1 = newDense(p, g, tinyDenseDim, tinyHidden)
	m.l2 = newDense(p, g, tinyHidden, 1)
	rng := rand.New(rand.NewSource(seed))
	m.l1.init(rng)
	m.l2.init(rng)
	m.in = tensor.NewVector(tinyDenseDim)
	m.h1 = tensor.NewVector(tinyHidden)
	m.m1 = tensor.NewVector(tinyHidden)
	m.dh1 = tensor.NewVector(tinyHidden)
	return m
}

func (m *tinyNN) Kind() Kind                      { return KindA }
func (m *tinyNN) Name() string                    { return "Tiny Neural Net" }
func (m *tinyNN) NumParams() int                  { return len(m.params) }
func (m *tinyNN) Params() tensor.Vector           { return m.params }
func (m *tinyNN) Grads() tensor.Vector            { return m.grads }
func (m *tinyNN) SetParams(p tensor.Vector) error { return copyParams(m.params, p, KindA) }
func (m *tinyNN) ZeroGrads()                      { m.grads.Zero() }

func (m *tinyNN) forward(ex *data.Example) float64 {
	fillDense(m.in, ex.Dense)
	m.l1.forward(m.in, m.h1)
	tensor.ApplyReLU(m.h1, m.m1)
	var out [1]float64
	m.l2.forward(m.h1, out[:])
	return tensor.Sigmoid(out[0])
}

func (m *tinyNN) Predict(ex *data.Example) float64 { return m.forward(ex) }

func (m *tinyNN) TrainStep(ex *data.Example) float64 {
	p := m.forward(ex)
	y := binaryLabel(ex)
	dOut := [1]float64{p - y}
	m.l2.backward(m.h1, dOut[:], m.dh1)
	maskGrad(m.dh1, m.m1)
	m.l1.backward(m.in, m.dh1, nil)
	return tensor.LogLoss(p, y)
}

func (m *tinyNN) Clone() Model {
	c := newTinyNN(0)
	copy(c.params, m.params)
	return c
}

func (m *tinyNN) Cost() CostProfile {
	macs := float64(m.l1.numParams() + m.l2.numParams())
	return CostProfile{
		TrainFLOPs:         6 * macs,
		InferFLOPs:         2 * macs,
		MatmulFrac:         0.95,
		PrepCostPerExample: float64(tinyDenseDim),
		WeightBytes:        4 * len(m.params),
		WireOverheadBytes:  51 << 10, // ships with its ops bundle
		AssetBytes:         51 << 10,
		ActivationFloats:   tinyDenseDim + 3*tinyHidden + 2,
	}
}

// ---------------------------------------------------------------- model B

// sparseMLP is Table 5's model B: a hashed multi-hot input feeding a small
// MLP — the architecture selected for the ads case study (§4.1).
type sparseMLP struct {
	params, grads tensor.Vector
	l0            *sparseLinear
	l1, l2        *dense
	h0, m0        tensor.Vector
	h1, m1        tensor.Vector
	dh0, dh1      tensor.Vector
}

func newSparseMLP(seed int64) *sparseMLP {
	n := (sparseDim*sparseHidden1 + sparseHidden1) +
		(sparseHidden1*sparseHidden2 + sparseHidden2) +
		(sparseHidden2 + 1)
	m := &sparseMLP{params: tensor.NewVector(n), grads: tensor.NewVector(n)}
	p, g := &arena{buf: m.params}, &arena{buf: m.grads}
	m.l0 = newSparseLinear(p, g, sparseDim, sparseHidden1)
	m.l1 = newDense(p, g, sparseHidden1, sparseHidden2)
	m.l2 = newDense(p, g, sparseHidden2, 1)
	rng := rand.New(rand.NewSource(seed))
	m.l0.init(rng)
	m.l1.init(rng)
	m.l2.init(rng)
	m.h0 = tensor.NewVector(sparseHidden1)
	m.m0 = tensor.NewVector(sparseHidden1)
	m.h1 = tensor.NewVector(sparseHidden2)
	m.m1 = tensor.NewVector(sparseHidden2)
	m.dh0 = tensor.NewVector(sparseHidden1)
	m.dh1 = tensor.NewVector(sparseHidden2)
	return m
}

func (m *sparseMLP) Kind() Kind                      { return KindB }
func (m *sparseMLP) Name() string                    { return "MLP w/ sparse features" }
func (m *sparseMLP) NumParams() int                  { return len(m.params) }
func (m *sparseMLP) Params() tensor.Vector           { return m.params }
func (m *sparseMLP) Grads() tensor.Vector            { return m.grads }
func (m *sparseMLP) SetParams(p tensor.Vector) error { return copyParams(m.params, p, KindB) }
func (m *sparseMLP) ZeroGrads()                      { m.grads.Zero() }

func (m *sparseMLP) forward(ex *data.Example) float64 {
	m.l0.forward(ex.Sparse, m.h0)
	tensor.ApplyReLU(m.h0, m.m0)
	m.l1.forward(m.h0, m.h1)
	tensor.ApplyReLU(m.h1, m.m1)
	var out [1]float64
	m.l2.forward(m.h1, out[:])
	return tensor.Sigmoid(out[0])
}

func (m *sparseMLP) Predict(ex *data.Example) float64 { return m.forward(ex) }

func (m *sparseMLP) TrainStep(ex *data.Example) float64 {
	p := m.forward(ex)
	y := binaryLabel(ex)
	dOut := [1]float64{p - y}
	m.l2.backward(m.h1, dOut[:], m.dh1)
	maskGrad(m.dh1, m.m1)
	m.l1.backward(m.h0, m.dh1, m.dh0)
	maskGrad(m.dh0, m.m0)
	m.l0.backward(ex.Sparse, m.dh0)
	return tensor.LogLoss(p, y)
}

func (m *sparseMLP) Clone() Model {
	c := newSparseMLP(0)
	copy(c.params, m.params)
	return c
}

func (m *sparseMLP) Cost() CostProfile {
	// A mobile runtime executes the multi-hot layer as a dense matmul
	// over the full hashed dimension — the root cause of model B's
	// outsized device time versus model C (Table 5).
	denseMACs := float64(sparseDim*sparseHidden1 + sparseHidden1*sparseHidden2 + sparseHidden2)
	return CostProfile{
		TrainFLOPs:         6 * denseMACs,
		InferFLOPs:         2 * denseMACs,
		MatmulFrac:         0.98,
		PrepCostPerExample: 40 * 8, // vocab-file lookups per active feature
		WeightBytes:        4 * len(m.params),
		ActivationFloats:   2*sparseHidden1 + 2*sparseHidden2 + 2,
	}
}

// ---------------------------------------------------------------- model C

// embedMLP is Table 5's model C: mean-pooled token embeddings concatenated
// with dense context features, feeding a small MLP — the messaging
// classifier of §4.2.
type embedMLP struct {
	params, grads tensor.Vector
	emb           *embedding
	l1, l2        *dense
	concat        tensor.Vector // [embDim + denseDim]
	h1, m1        tensor.Vector
	dh1, dconcat  tensor.Vector
}

func newEmbedMLP(seed int64) *embedMLP {
	concatDim := embedMLPDim + embedMLPDenseDim
	n := embedMLPVocab*embedMLPDim +
		(concatDim*embedMLPHidden + embedMLPHidden) +
		(embedMLPHidden + 1)
	m := &embedMLP{params: tensor.NewVector(n), grads: tensor.NewVector(n)}
	p, g := &arena{buf: m.params}, &arena{buf: m.grads}
	m.emb = newEmbedding(p, g, embedMLPVocab, embedMLPDim)
	m.l1 = newDense(p, g, concatDim, embedMLPHidden)
	m.l2 = newDense(p, g, embedMLPHidden, 1)
	rng := rand.New(rand.NewSource(seed))
	m.emb.init(rng)
	m.l1.init(rng)
	m.l2.init(rng)
	m.concat = tensor.NewVector(concatDim)
	m.h1 = tensor.NewVector(embedMLPHidden)
	m.m1 = tensor.NewVector(embedMLPHidden)
	m.dh1 = tensor.NewVector(embedMLPHidden)
	m.dconcat = tensor.NewVector(concatDim)
	return m
}

func (m *embedMLP) Kind() Kind                      { return KindC }
func (m *embedMLP) Name() string                    { return "MLP w/ medium embedding" }
func (m *embedMLP) NumParams() int                  { return len(m.params) }
func (m *embedMLP) Params() tensor.Vector           { return m.params }
func (m *embedMLP) Grads() tensor.Vector            { return m.grads }
func (m *embedMLP) SetParams(p tensor.Vector) error { return copyParams(m.params, p, KindC) }
func (m *embedMLP) ZeroGrads()                      { m.grads.Zero() }

func (m *embedMLP) forward(ex *data.Example) float64 {
	m.emb.meanForward(truncTokens(ex.Tokens), m.concat[:embedMLPDim])
	fillDense(m.concat[embedMLPDim:], ex.Dense)
	m.l1.forward(m.concat, m.h1)
	tensor.ApplyReLU(m.h1, m.m1)
	var out [1]float64
	m.l2.forward(m.h1, out[:])
	return tensor.Sigmoid(out[0])
}

func (m *embedMLP) Predict(ex *data.Example) float64 { return m.forward(ex) }

func (m *embedMLP) TrainStep(ex *data.Example) float64 {
	p := m.forward(ex)
	y := binaryLabel(ex)
	dOut := [1]float64{p - y}
	m.l2.backward(m.h1, dOut[:], m.dh1)
	maskGrad(m.dh1, m.m1)
	m.l1.backward(m.concat, m.dh1, m.dconcat)
	m.emb.meanBackward(truncTokens(ex.Tokens), m.dconcat[:embedMLPDim])
	return tensor.LogLoss(p, y)
}

func (m *embedMLP) Clone() Model {
	c := newEmbedMLP(0)
	copy(c.params, m.params)
	return c
}

func (m *embedMLP) Cost() CostProfile {
	// Embedding lookups are true gathers even on device, so the compute
	// cost is only the small MLP — model C trains faster than model A's
	// ballpark despite 137x the parameters.
	concatDim := embedMLPDim + embedMLPDenseDim
	macs := float64(concatDim*embedMLPHidden + embedMLPHidden)
	gather := float64(28 * embedMLPDim) // mean tokens per record
	return CostProfile{
		TrainFLOPs:         6*macs + 4*gather,
		InferFLOPs:         2*macs + gather,
		MatmulFrac:         0.75,
		PrepCostPerExample: 28, // tokenizer work per token
		WeightBytes:        4 * len(m.params),
		WireOverheadBytes:  90 << 10, // vocab delta sync
		ActivationFloats:   concatDim*2 + 2*embedMLPHidden + 2,
	}
}

// shared helpers -----------------------------------------------------------

// fillDense copies src into dst, zero-filling the tail when src is shorter
// and truncating when longer, so every domain's records fit every model.
func fillDense(dst tensor.Vector, src []float64) {
	n := copy(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// binaryLabel maps the primary label to {0,1}. Ranking generators stamp the
// click label into Label, so one rule serves every domain.
func binaryLabel(ex *data.Example) float64 {
	if ex.Label >= 0.5 {
		return 1
	}
	return 0
}

// maskGrad zeroes gradient entries where the ReLU was inactive.
func maskGrad(dh, mask tensor.Vector) {
	for i := range dh {
		dh[i] *= mask[i]
	}
}

// truncTokens bounds sequences to the model buffer length.
func truncTokens(tokens []int) []int {
	if len(tokens) > maxSeqLen {
		return tokens[:maxSeqLen]
	}
	return tokens
}
