package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"flint/internal/data"
	"flint/internal/tensor"
)

// Table 5's published parameter counts; our architectures must land within 1%.
var paperParams = map[Kind]float64{
	KindA: 1510,
	KindB: 189000,
	KindC: 208000,
	KindD: 390000,
	KindE: 922000,
}

func TestParamCountsMatchTable5(t *testing.T) {
	for kind, want := range paperParams {
		m, err := New(kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.NumParams())
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("model %s: %v params, paper reports %v (diff > 1%%)", kind, got, want)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind("Z"), 1); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func exampleFor(t *testing.T, kind Kind, seed int64) *data.Example {
	t.Helper()
	spec, err := InputSpecFor(kind)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.Dummy(spec, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Examples[0]
}

func TestPredictInRange(t *testing.T) {
	for _, kind := range Kinds {
		m, err := New(kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		for s := int64(0); s < 10; s++ {
			p := m.Predict(exampleFor(t, kind, s))
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("model %s: prediction %v outside [0,1]", kind, p)
			}
		}
	}
}

func TestTrainStepAccumulatesGrads(t *testing.T) {
	for _, kind := range Kinds {
		m, err := New(kind, 3)
		if err != nil {
			t.Fatal(err)
		}
		ex := exampleFor(t, kind, 7)
		loss := m.TrainStep(ex)
		if loss <= 0 || math.IsNaN(loss) {
			t.Fatalf("model %s: loss %v", kind, loss)
		}
		if m.Grads().Norm2() == 0 {
			t.Fatalf("model %s: gradients all zero after TrainStep", kind)
		}
		m.ZeroGrads()
		if m.Grads().Norm2() != 0 {
			t.Fatalf("model %s: ZeroGrads left residue", kind)
		}
	}
}

// TestGradientCheck verifies the analytic gradient of every architecture
// against a central finite difference on a sample of coordinates. This is
// the key correctness test for the whole training stack.
func TestGradientCheck(t *testing.T) {
	for _, kind := range Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m, err := New(kind, 5)
			if err != nil {
				t.Fatal(err)
			}
			ex := exampleFor(t, kind, 11)
			m.ZeroGrads()
			m.TrainStep(ex)
			analytic := m.Grads().Clone()

			loss := func() float64 {
				// Recompute the pure loss without touching grads:
				// TrainStep accumulates, so use a clone.
				c := m.Clone()
				c.ZeroGrads()
				return c.TrainStep(ex)
			}
			// Sample among active coordinates: single-example gradients
			// touch only a sliver of embedding tables.
			var active []int
			for i, gr := range analytic {
				if gr != 0 {
					active = append(active, i)
				}
			}
			const eps = 1e-5
			rng := rand.New(rand.NewSource(13))
			params := m.Params()
			checked := 0
			for try := 0; try < 400 && checked < 25 && len(active) > 0; try++ {
				i := active[rng.Intn(len(active))]
				orig := params[i]
				params[i] = orig + eps
				up := loss()
				params[i] = orig - eps
				down := loss()
				params[i] = orig
				numeric := (up - down) / (2 * eps)
				diff := math.Abs(numeric - analytic[i])
				scale := math.Max(1e-6, math.Max(math.Abs(numeric), math.Abs(analytic[i])))
				if diff/scale > 2e-3 {
					t.Fatalf("model %s param %d: analytic %v numeric %v", kind, i, analytic[i], numeric)
				}
				checked++
			}
			if checked < 10 {
				t.Fatalf("model %s: only %d gradient coordinates checked", kind, checked)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, kind := range Kinds {
		m, err := New(kind, 6)
		if err != nil {
			t.Fatal(err)
		}
		c := m.Clone()
		if c.NumParams() != m.NumParams() {
			t.Fatalf("model %s: clone param count mismatch", kind)
		}
		before := m.Params()[0]
		c.Params()[0] = before + 42
		if m.Params()[0] != before {
			t.Fatalf("model %s: clone aliases original", kind)
		}
	}
}

func TestSetParamsValidates(t *testing.T) {
	m, err := New(KindA, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetParams(tensor.NewVector(3)); err == nil {
		t.Fatal("length mismatch must error")
	}
	p := tensor.NewVector(m.NumParams())
	p.Fill(0.25)
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if m.Params()[0] != 0.25 {
		t.Fatal("SetParams must copy values")
	}
}

func TestCostProfiles(t *testing.T) {
	var prevTrain float64
	order := []Kind{KindA, KindC, KindB, KindD, KindE} // ascending device cost per Table 5
	for _, kind := range order {
		m, err := New(kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := m.Cost()
		if c.TrainFLOPs <= 0 || c.InferFLOPs <= 0 || c.WeightBytes <= 0 {
			t.Fatalf("model %s: non-positive cost fields %+v", kind, c)
		}
		if c.TrainFLOPs <= c.InferFLOPs {
			t.Fatalf("model %s: training must cost more than inference", kind)
		}
		if c.MatmulFrac < 0 || c.MatmulFrac > 1 {
			t.Fatalf("model %s: matmul fraction %v", kind, c.MatmulFrac)
		}
		if c.WeightBytes != 4*m.NumParams() {
			t.Fatalf("model %s: weight bytes %d != 4*params", kind, c.WeightBytes)
		}
		if c.StorageBytes() < c.WeightBytes {
			t.Fatalf("model %s: storage below weights", kind)
		}
		if c.NetworkBytesPerRound() != 2*c.TransferBytes() {
			t.Fatalf("model %s: network accounting broken", kind)
		}
		if kind != KindA && c.TrainFLOPs <= prevTrain {
			t.Fatalf("device-cost ordering violated at %s: %v <= %v", kind, c.TrainFLOPs, prevTrain)
		}
		prevTrain = c.TrainFLOPs
	}
}

func TestTrainLocalLearnsAds(t *testing.T) {
	g, err := data.NewAdsGenerator(data.DefaultAdsConfig(200, 21))
	if err != nil {
		t.Fatal(err)
	}
	train := data.Pool(g, 40)
	test := g.TestSet(800)
	m, err := New(KindB, 2)
	if err != nil {
		t.Fatal(err)
	}
	before, err := EvalAUPR(m, test)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainLocal(m, train.Examples, LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1}, rng); err != nil {
		t.Fatal(err)
	}
	after, err := EvalAUPR(m, test)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before+0.02 {
		t.Fatalf("training did not improve AUPR: %v -> %v", before, after)
	}
}

func TestTrainLocalValidation(t *testing.T) {
	m, _ := New(KindA, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainLocal(m, nil, LocalConfig{Epochs: 1, BatchSize: 1, LR: 0.1}, rng); err == nil {
		t.Fatal("empty examples must error")
	}
	ex := exampleFor(t, KindA, 1)
	bad := []LocalConfig{
		{Epochs: 0, BatchSize: 1, LR: 0.1},
		{Epochs: 1, BatchSize: 0, LR: 0.1},
		{Epochs: 1, BatchSize: 1, LR: 0},
	}
	for i, cfg := range bad {
		if _, err := TrainLocal(m, []*data.Example{ex}, cfg, rng); err == nil {
			t.Fatalf("config %d must fail validation", i)
		}
	}
}

func TestSchedules(t *testing.T) {
	c := ConstantLR(0.1)
	if c.LR(0) != 0.1 || c.LR(100) != 0.1 {
		t.Fatal("constant schedule must be constant")
	}
	e := ExpDecayLR{Base: 1, Rate: 0.5, DecaySteps: 10}
	if e.LR(0) != 1 {
		t.Fatalf("exp decay at 0: %v", e.LR(0))
	}
	if got := e.LR(10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("exp decay at 10: %v", got)
	}
	if e.LR(20) >= e.LR(10) {
		t.Fatal("exp decay must decrease")
	}
	f := ExpDecayLR{Base: 1, Rate: 0.5, DecaySteps: 10, Floor: 0.4}
	if f.LR(100) != 0.4 {
		t.Fatalf("floor not applied: %v", f.LR(100))
	}
	z := ExpDecayLR{Base: 1, Rate: 0.5}
	if z.LR(5) != 1 {
		t.Fatal("zero decay steps must hold base")
	}
	if c.String() == "" || e.String() == "" {
		t.Fatal("schedules must print")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, kind := range Kinds {
		m, err := New(kind, 17)
		if err != nil {
			t.Fatal(err)
		}
		ex := exampleFor(t, kind, 3)
		want := m.Predict(ex)
		var buf bytes.Buffer
		if err := Save(m, &buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got := loaded.Predict(ex); math.Abs(got-want) > 1e-12 {
			t.Fatalf("model %s: round-trip prediction %v != %v", kind, got, want)
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob")); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

func TestEvalNDCG(t *testing.T) {
	g, err := data.NewSearchGenerator(data.DefaultSearchConfig(300, 31))
	if err != nil {
		t.Fatal(err)
	}
	test := g.TestSet(2500)
	m, err := New(KindA, 4)
	if err != nil {
		t.Fatal(err)
	}
	ndcg, err := EvalNDCG(m, test, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ndcg <= 0 || ndcg > 1 {
		t.Fatalf("NDCG %v outside (0,1]", ndcg)
	}
	// Training on search data should improve NDCG; clicks are rare
	// (~5% positives), so it takes a real pass over a real pool.
	train := data.Pool(g, 200)
	rng := rand.New(rand.NewSource(2))
	if _, err := TrainLocal(m, train.Examples, LocalConfig{Epochs: 6, BatchSize: 32, LR: 0.03}, rng); err != nil {
		t.Fatal(err)
	}
	after, err := EvalNDCG(m, test, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after <= ndcg+0.02 {
		t.Fatalf("NDCG did not improve: %v -> %v", ndcg, after)
	}
	if _, err := EvalNDCG(m, &data.Dataset{Examples: []*data.Example{{}}}, 0); err == nil {
		t.Fatal("NDCG without query groups must error")
	}
	// Zero-relevance-only groups are skipped and must error out when
	// nothing remains.
	zero := &data.Dataset{Examples: []*data.Example{{QueryID: 5}, {QueryID: 5}}}
	if _, err := EvalNDCG(m, zero, 0); err == nil {
		t.Fatal("all-zero relevance must error")
	}
}

func TestEvalDispatch(t *testing.T) {
	m, _ := New(KindA, 1)
	spec, _ := InputSpecFor(KindA)
	ds, _ := data.Dummy(spec, 64, 5)
	if _, err := Eval(m, ds, MetricAUPR); err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(m, ds, Metric("bogus")); err == nil {
		t.Fatal("unknown metric must error")
	}
}

func TestMultiTaskTrainsAllHeads(t *testing.T) {
	cfg := data.DefaultMessagingConfig(50, 3)
	cfg.Tasks = 3
	g, err := data.NewMessagingGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	// Model E consumes dense features; use dummy multi-task records.
	spec, _ := InputSpecFor(KindE)
	ds, _ := data.Dummy(spec, 8, 9)
	m, err := New(KindE, 8)
	if err != nil {
		t.Fatal(err)
	}
	mt := m.(*multiTaskMLP)
	loss := m.TrainStep(ds.Examples[0])
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	probs := mt.PredictTasks(ds.Examples[0])
	if len(probs) != 3 {
		t.Fatalf("want 3 task outputs, got %d", len(probs))
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("task prob %v", p)
		}
	}
}

func TestInputSpecs(t *testing.T) {
	for _, kind := range Kinds {
		spec, err := InputSpecFor(kind)
		if err != nil {
			t.Fatal(err)
		}
		if spec.DenseDim == 0 && spec.SparseDim == 0 && spec.Vocab == 0 {
			t.Fatalf("model %s: empty input spec", kind)
		}
	}
	if _, err := InputSpecFor(Kind("nope")); err == nil {
		t.Fatal("unknown kind must error")
	}
}
