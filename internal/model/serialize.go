package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"flint/internal/codec"
	"flint/internal/tensor"
)

// Checkpoint framing: a magic/format-version header in front of a codec
// tensor blob, so unknown or corrupt checkpoints fail with a clear error
// instead of a raw gob decode error.
//
//	offset  size  field
//	0       4     magic "FLNT"
//	4       1     checkpoint format version (currently 1)
//	5       1     kind length n
//	6       n     kind string
//	6+n     —     codec blob (raw float64 — checkpoints stay lossless)
const (
	saveMagic   = "FLNT"
	saveVersion = 1
)

// snapshot is the legacy (pre-codec) wire format: a bare gob of kind and
// weights. Load still accepts it via the shim below.
type snapshot struct {
	Kind   Kind
	Params []float64
}

// Save writes the model's kind and parameters to w — the model-store
// checkpoint format shared by centralized and FL training (paper §3.1's
// shared model store, §3.4's leader checkpointing).
func Save(m Model, w io.Writer) error {
	kind := string(m.Kind())
	if len(kind) == 0 || len(kind) > 255 {
		return fmt.Errorf("model: save: bad kind %q", kind)
	}
	blob, err := codec.Encode(m.Params(), codec.RawF64)
	if err != nil {
		return fmt.Errorf("model: save %s: %w", kind, err)
	}
	hdr := make([]byte, 0, len(saveMagic)+2+len(kind))
	hdr = append(hdr, saveMagic...)
	hdr = append(hdr, saveVersion, byte(len(kind)))
	hdr = append(hdr, kind...)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("model: save %s: %w", kind, err)
	}
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("model: save %s: %w", kind, err)
	}
	return nil
}

// Load reconstructs a model from a Save stream. Streams written before
// the versioned header existed (bare gob snapshots) still load.
func Load(r io.Reader) (Model, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	if bytes.HasPrefix(raw, []byte(saveMagic)) {
		return loadVersioned(raw[len(saveMagic):])
	}
	// Legacy shim: pre-codec checkpoints were bare gob snapshots with no
	// magic. Anything that is neither is reported as unrecognized rather
	// than as a confusing gob internal error alone.
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("model: load: unrecognized checkpoint (no %q header and not a legacy gob snapshot): %w", saveMagic, err)
	}
	return fromKindParams(snap.Kind, snap.Params)
}

func loadVersioned(rest []byte) (Model, error) {
	if len(rest) < 2 {
		return nil, fmt.Errorf("model: load: truncated checkpoint header")
	}
	if v := rest[0]; v != saveVersion {
		return nil, fmt.Errorf("model: load: unsupported checkpoint format version %d (want %d)", v, saveVersion)
	}
	n := int(rest[1])
	if len(rest) < 2+n {
		return nil, fmt.Errorf("model: load: truncated checkpoint header")
	}
	kind := Kind(rest[2 : 2+n])
	params, _, err := codec.Decode(rest[2+n:])
	if err != nil {
		return nil, fmt.Errorf("model: load %s: corrupt checkpoint tensor: %w", kind, err)
	}
	return fromKindParams(kind, params)
}

func fromKindParams(kind Kind, params tensor.Vector) (Model, error) {
	m, err := New(kind, 0)
	if err != nil {
		return nil, err
	}
	if err := m.SetParams(params); err != nil {
		return nil, err
	}
	return m, nil
}
