package model

import (
	"encoding/gob"
	"fmt"
	"io"

	"flint/internal/tensor"
)

// snapshot is the wire format for a serialized model: the kind identifies
// the architecture (reconstructed via New) and Params carries the weights.
type snapshot struct {
	Kind   Kind
	Params []float64
}

// Save writes the model's kind and parameters to w in gob format — the
// model-store checkpoint format shared by centralized and FL training
// (paper §3.1's shared model store, §3.4's leader checkpointing).
func Save(m Model, w io.Writer) error {
	snap := snapshot{Kind: m.Kind(), Params: m.Params()}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("model: save %s: %w", m.Kind(), err)
	}
	return nil
}

// Load reconstructs a model from a Save stream.
func Load(r io.Reader) (Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	m, err := New(snap.Kind, 0)
	if err != nil {
		return nil, err
	}
	if err := m.SetParams(tensor.Vector(snap.Params)); err != nil {
		return nil, err
	}
	return m, nil
}
