package model

import (
	"fmt"
	"sort"

	"flint/internal/data"
	"flint/internal/metrics"
)

// Scores runs the model over the dataset and returns the per-example
// primary-task scores alongside the binary labels.
func Scores(m Model, ds *data.Dataset) ([]float64, []bool) {
	scores := make([]float64, ds.Len())
	labels := make([]bool, ds.Len())
	for i, ex := range ds.Examples {
		scores[i] = m.Predict(ex)
		labels[i] = ex.Label >= 0.5
	}
	return scores, labels
}

// EvalAUPR evaluates Area Under Precision-Recall on the dataset, the offline
// metric for the ads and messaging domains (Table 4).
func EvalAUPR(m Model, ds *data.Dataset) (float64, error) {
	scores, labels := Scores(m, ds)
	return metrics.AUPR(scores, labels)
}

// EvalLogLoss evaluates mean binary cross-entropy on the dataset.
func EvalLogLoss(m Model, ds *data.Dataset) (float64, error) {
	scores, labels := Scores(m, ds)
	return metrics.LogLoss(scores, labels)
}

// EvalNDCG evaluates mean NDCG@k over the dataset's query groups, the
// offline metric for the search domain (Table 4). Records without a QueryID
// and zero-relevance groups (queries with no engagement, for which NDCG is
// undefined) are skipped.
func EvalNDCG(m Model, ds *data.Dataset, k int) (float64, error) {
	groups := ds.ByQuery()
	delete(groups, 0)
	if len(groups) == 0 {
		return 0, fmt.Errorf("model: EvalNDCG needs query groups")
	}
	var total float64
	n := 0
	for _, docs := range groups {
		hasRel := false
		for _, d := range docs {
			if d.Relevance > 0 {
				hasRel = true
				break
			}
		}
		if !hasRel {
			continue
		}
		scored := make([]struct {
			score float64
			rel   float64
		}, len(docs))
		for i, d := range docs {
			scored[i].score = m.Predict(d)
			scored[i].rel = d.Relevance
		}
		sort.SliceStable(scored, func(a, b int) bool { return scored[a].score > scored[b].score })
		rels := make([]float64, len(scored))
		for i := range scored {
			rels[i] = scored[i].rel
		}
		total += metrics.NDCG(rels, k)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("model: EvalNDCG found no groups with relevance")
	}
	return total / float64(n), nil
}

// Metric identifies the offline evaluation metric of a domain.
type Metric string

// The metrics used in Table 4.
const (
	MetricAUPR Metric = "AUPR"
	MetricNDCG Metric = "NDCG"
)

// Eval dispatches to the metric's evaluator (NDCG uses the full list).
func Eval(m Model, ds *data.Dataset, metric Metric) (float64, error) {
	switch metric {
	case MetricAUPR:
		return EvalAUPR(m, ds)
	case MetricNDCG:
		return EvalNDCG(m, ds, 0)
	default:
		return 0, fmt.Errorf("model: unknown metric %q", metric)
	}
}
