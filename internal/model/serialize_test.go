package model

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// TestLoadLegacyGob proves the shim: checkpoints written before the
// versioned header existed (bare gob snapshots) still load.
func TestLoadLegacyGob(t *testing.T) {
	m, err := New(KindA, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	legacy := snapshot{Kind: m.Kind(), Params: m.Params()}
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("legacy gob load: %v", err)
	}
	if loaded.Kind() != KindA {
		t.Fatalf("kind = %s", loaded.Kind())
	}
	diff := loaded.Params().Clone()
	diff.Sub(m.Params())
	if diff.Norm2() != 0 {
		t.Fatal("legacy load changed parameters")
	}
}

// TestLoadCorruptCheckpoint checks that damage at each framing layer
// yields a clear, identifying error rather than a bare gob failure.
func TestLoadCorruptCheckpoint(t *testing.T) {
	m, err := New(KindA, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 9
			return b
		}(), "unsupported checkpoint format version"},
		{"truncated header", good[:5], "truncated checkpoint header"},
		{"flipped tensor byte", func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0xFF
			return b
		}(), "corrupt checkpoint tensor"},
		{"not a checkpoint at all", []byte("definitely not a checkpoint"), "unrecognized checkpoint"},
	}
	for _, tc := range cases {
		_, err := Load(bytes.NewReader(tc.blob))
		if err == nil {
			t.Errorf("%s: load succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
