package model

import (
	"math/rand"

	"flint/internal/data"
	"flint/internal/tensor"
)

// ---------------------------------------------------------------- model D

// embedCNN is Table 5's model D: token embeddings through two temporal
// convolutions, global max pooling, and a dense head. The heaviest
// sequence model in the zoo, representative of deeper NLP tasks.
type embedCNN struct {
	params, grads tensor.Vector
	emb           *embedding
	c1, c2        *conv1d
	l1, l2        *dense

	seq, dseq   []tensor.Vector // [L][embDim]
	a1, da1     []tensor.Vector // [L][conv1]
	mask1       []tensor.Vector
	a2, da2     []tensor.Vector // [L][conv2]
	mask2       []tensor.Vector
	pool, dpool tensor.Vector
	argmax      []int
	h1, m1, dh1 tensor.Vector
	win1, dwin1 tensor.Vector
	win2, dwin2 tensor.Vector
}

func newEmbedCNN(seed int64) *embedCNN {
	n := embedCNNVocab*embedCNNDim +
		(embedCNNConv1*embedCNNKernel*embedCNNDim + embedCNNConv1) +
		(embedCNNConv2*embedCNNKernel*embedCNNConv1 + embedCNNConv2) +
		(embedCNNConv2*embedCNNHidden + embedCNNHidden) +
		(embedCNNHidden + 1)
	m := &embedCNN{params: tensor.NewVector(n), grads: tensor.NewVector(n)}
	p, g := &arena{buf: m.params}, &arena{buf: m.grads}
	m.emb = newEmbedding(p, g, embedCNNVocab, embedCNNDim)
	m.c1 = newConv1D(p, g, embedCNNKernel, embedCNNDim, embedCNNConv1)
	m.c2 = newConv1D(p, g, embedCNNKernel, embedCNNConv1, embedCNNConv2)
	m.l1 = newDense(p, g, embedCNNConv2, embedCNNHidden)
	m.l2 = newDense(p, g, embedCNNHidden, 1)
	rng := rand.New(rand.NewSource(seed))
	m.emb.init(rng)
	m.c1.init(rng)
	m.c2.init(rng)
	m.l1.init(rng)
	m.l2.init(rng)

	m.seq = seqBuffer(maxSeqLen, embedCNNDim)
	m.dseq = seqBuffer(maxSeqLen, embedCNNDim)
	m.a1 = seqBuffer(maxSeqLen, embedCNNConv1)
	m.da1 = seqBuffer(maxSeqLen, embedCNNConv1)
	m.mask1 = seqBuffer(maxSeqLen, embedCNNConv1)
	m.a2 = seqBuffer(maxSeqLen, embedCNNConv2)
	m.da2 = seqBuffer(maxSeqLen, embedCNNConv2)
	m.mask2 = seqBuffer(maxSeqLen, embedCNNConv2)
	m.pool = tensor.NewVector(embedCNNConv2)
	m.dpool = tensor.NewVector(embedCNNConv2)
	m.argmax = make([]int, embedCNNConv2)
	m.h1 = tensor.NewVector(embedCNNHidden)
	m.m1 = tensor.NewVector(embedCNNHidden)
	m.dh1 = tensor.NewVector(embedCNNHidden)
	m.win1 = tensor.NewVector(embedCNNKernel * embedCNNDim)
	m.dwin1 = tensor.NewVector(embedCNNKernel * embedCNNDim)
	m.win2 = tensor.NewVector(embedCNNKernel * embedCNNConv1)
	m.dwin2 = tensor.NewVector(embedCNNKernel * embedCNNConv1)
	return m
}

func (m *embedCNN) Kind() Kind                      { return KindD }
func (m *embedCNN) Name() string                    { return "CNN w/ large embedding" }
func (m *embedCNN) NumParams() int                  { return len(m.params) }
func (m *embedCNN) Params() tensor.Vector           { return m.params }
func (m *embedCNN) Grads() tensor.Vector            { return m.grads }
func (m *embedCNN) SetParams(p tensor.Vector) error { return copyParams(m.params, p, KindD) }
func (m *embedCNN) ZeroGrads()                      { m.grads.Zero() }

// forward returns the probability and the effective sequence length.
func (m *embedCNN) forward(ex *data.Example) (float64, int) {
	tokens := truncTokens(ex.Tokens)
	l := len(tokens)
	if l == 0 {
		tokens = []int{0}
		l = 1
	}
	m.emb.rowsForward(tokens, m.seq[:l])
	m.c1.forward(m.seq[:l], m.a1[:l], m.win1)
	for t := 0; t < l; t++ {
		tensor.ApplyReLU(m.a1[t], m.mask1[t])
	}
	m.c2.forward(m.a1[:l], m.a2[:l], m.win2)
	for t := 0; t < l; t++ {
		tensor.ApplyReLU(m.a2[t], m.mask2[t])
	}
	globalMaxPool(m.a2[:l], m.pool, m.argmax)
	m.l1.forward(m.pool, m.h1)
	tensor.ApplyReLU(m.h1, m.m1)
	var out [1]float64
	m.l2.forward(m.h1, out[:])
	return tensor.Sigmoid(out[0]), l
}

func (m *embedCNN) Predict(ex *data.Example) float64 {
	p, _ := m.forward(ex)
	return p
}

func (m *embedCNN) TrainStep(ex *data.Example) float64 {
	p, l := m.forward(ex)
	y := binaryLabel(ex)
	dOut := [1]float64{p - y}
	m.l2.backward(m.h1, dOut[:], m.dh1)
	maskGrad(m.dh1, m.m1)
	m.l1.backward(m.pool, m.dh1, m.dpool)
	zeroSeq(m.da2[:l])
	globalMaxPoolBackward(m.dpool, m.argmax, m.da2[:l])
	for t := 0; t < l; t++ {
		maskGrad(m.da2[t], m.mask2[t])
	}
	zeroSeq(m.da1[:l])
	m.c2.backward(m.a1[:l], m.da2[:l], m.da1[:l], m.win2, m.dwin2)
	for t := 0; t < l; t++ {
		maskGrad(m.da1[t], m.mask1[t])
	}
	zeroSeq(m.dseq[:l])
	m.c1.backward(m.seq[:l], m.da1[:l], m.dseq[:l], m.win1, m.dwin1)
	tokens := truncTokens(ex.Tokens)
	if len(tokens) == 0 {
		tokens = []int{0}
	}
	m.emb.rowsBackward(tokens, m.dseq[:l])
	return tensor.LogLoss(p, y)
}

func (m *embedCNN) Clone() Model {
	c := newEmbedCNN(0)
	copy(c.params, m.params)
	return c
}

func (m *embedCNN) Cost() CostProfile {
	const meanLen = 28
	convMACs := float64(meanLen * (embedCNNKernel*embedCNNDim*embedCNNConv1 +
		embedCNNKernel*embedCNNConv1*embedCNNConv2))
	denseMACs := float64(embedCNNConv2*embedCNNHidden + embedCNNHidden)
	gather := float64(meanLen * embedCNNDim)
	return CostProfile{
		TrainFLOPs:         6*(convMACs+denseMACs) + 4*gather,
		InferFLOPs:         2*(convMACs+denseMACs) + gather,
		MatmulFrac:         0.9,
		PrepCostPerExample: 28 * 8, // tokenization + large-vocab (11.6k) file lookups per token
		WeightBytes:        4 * len(m.params),
		AssetBytes:         9 << 20, // bundled vocab + mapping assets (§4.1)
		ActivationFloats: maxSeqLen*(embedCNNDim+2*embedCNNConv1+2*embedCNNConv2) +
			2*embedCNNConv2 + 2*embedCNNHidden + 2,
	}
}

// ---------------------------------------------------------------- model E

// multiTaskMLP is Table 5's model E: a shared dense trunk with three
// task-specific heads, the most CPU-intensive model in the zoo — the one
// the paper says should require a higher battery level for participation.
type multiTaskMLP struct {
	params, grads tensor.Vector
	t1, t2, t3    *dense
	heads         []*dense // pairs: hidden, out
	in            tensor.Vector
	h1, m1, dh1   tensor.Vector
	h2, m2, dh2   tensor.Vector
	h3, m3, dh3   tensor.Vector
	hh, mh, dhh   tensor.Vector // head hidden buffers (shared)
	dtrunk        tensor.Vector
}

func newMultiTaskMLP(seed int64) *multiTaskMLP {
	n := (multiTaskDenseDim*multiTaskHidden + multiTaskHidden) +
		(multiTaskHidden*multiTaskHidden + multiTaskHidden) +
		(multiTaskHidden*multiTaskTrunkOut + multiTaskTrunkOut) +
		multiTaskHeads*((multiTaskTrunkOut*multiTaskHeadDim+multiTaskHeadDim)+(multiTaskHeadDim+1))
	m := &multiTaskMLP{params: tensor.NewVector(n), grads: tensor.NewVector(n)}
	p, g := &arena{buf: m.params}, &arena{buf: m.grads}
	m.t1 = newDense(p, g, multiTaskDenseDim, multiTaskHidden)
	m.t2 = newDense(p, g, multiTaskHidden, multiTaskHidden)
	m.t3 = newDense(p, g, multiTaskHidden, multiTaskTrunkOut)
	rng := rand.New(rand.NewSource(seed))
	m.t1.init(rng)
	m.t2.init(rng)
	m.t3.init(rng)
	for t := 0; t < multiTaskHeads; t++ {
		hidden := newDense(p, g, multiTaskTrunkOut, multiTaskHeadDim)
		out := newDense(p, g, multiTaskHeadDim, 1)
		hidden.init(rng)
		out.init(rng)
		m.heads = append(m.heads, hidden, out)
	}
	m.in = tensor.NewVector(multiTaskDenseDim)
	m.h1 = tensor.NewVector(multiTaskHidden)
	m.m1 = tensor.NewVector(multiTaskHidden)
	m.dh1 = tensor.NewVector(multiTaskHidden)
	m.h2 = tensor.NewVector(multiTaskHidden)
	m.m2 = tensor.NewVector(multiTaskHidden)
	m.dh2 = tensor.NewVector(multiTaskHidden)
	m.h3 = tensor.NewVector(multiTaskTrunkOut)
	m.m3 = tensor.NewVector(multiTaskTrunkOut)
	m.dh3 = tensor.NewVector(multiTaskTrunkOut)
	m.hh = tensor.NewVector(multiTaskHeadDim)
	m.mh = tensor.NewVector(multiTaskHeadDim)
	m.dhh = tensor.NewVector(multiTaskHeadDim)
	m.dtrunk = tensor.NewVector(multiTaskTrunkOut)
	return m
}

func (m *multiTaskMLP) Kind() Kind                      { return KindE }
func (m *multiTaskMLP) Name() string                    { return "Multi-task MLP" }
func (m *multiTaskMLP) NumParams() int                  { return len(m.params) }
func (m *multiTaskMLP) Params() tensor.Vector           { return m.params }
func (m *multiTaskMLP) Grads() tensor.Vector            { return m.grads }
func (m *multiTaskMLP) SetParams(p tensor.Vector) error { return copyParams(m.params, p, KindE) }
func (m *multiTaskMLP) ZeroGrads()                      { m.grads.Zero() }

// trunkForward runs the shared layers.
func (m *multiTaskMLP) trunkForward(ex *data.Example) {
	fillDense(m.in, ex.Dense)
	m.t1.forward(m.in, m.h1)
	tensor.ApplyReLU(m.h1, m.m1)
	m.t2.forward(m.h1, m.h2)
	tensor.ApplyReLU(m.h2, m.m2)
	m.t3.forward(m.h2, m.h3)
	tensor.ApplyReLU(m.h3, m.m3)
}

// headForward runs head t over the current trunk output.
func (m *multiTaskMLP) headForward(t int) float64 {
	hidden, out := m.heads[2*t], m.heads[2*t+1]
	hidden.forward(m.h3, m.hh)
	tensor.ApplyReLU(m.hh, m.mh)
	var o [1]float64
	out.forward(m.hh, o[:])
	return tensor.Sigmoid(o[0])
}

func (m *multiTaskMLP) Predict(ex *data.Example) float64 {
	m.trunkForward(ex)
	return m.headForward(0)
}

// PredictTasks returns every head's probability.
func (m *multiTaskMLP) PredictTasks(ex *data.Example) []float64 {
	m.trunkForward(ex)
	out := make([]float64, multiTaskHeads)
	for t := range out {
		out[t] = m.headForward(t)
	}
	return out
}

func (m *multiTaskMLP) TrainStep(ex *data.Example) float64 {
	m.trunkForward(ex)
	labels := ex.Tasks
	if labels == nil {
		labels = []float64{binaryLabel(ex)}
	}
	tasks := multiTaskHeads
	if len(labels) < tasks {
		tasks = len(labels)
	}
	if tasks == 0 {
		return 0
	}
	// Train on the mean loss across tasks: every head's output gradient is
	// pre-scaled by 1/tasks so head and trunk gradients stay consistent.
	inv := 1 / float64(tasks)
	m.dtrunk.Zero()
	var loss float64
	for t := 0; t < tasks; t++ {
		p := m.headForward(t)
		y := labels[t]
		dOut := [1]float64{(p - y) * inv}
		hidden, out := m.heads[2*t], m.heads[2*t+1]
		out.backward(m.hh, dOut[:], m.dhh)
		maskGrad(m.dhh, m.mh)
		hidden.backward(m.h3, m.dhh, m.dh3)
		m.dtrunk.Add(m.dh3)
		loss += tensor.LogLoss(p, y) * inv
	}
	maskGrad(m.dtrunk, m.m3)
	m.t3.backward(m.h2, m.dtrunk, m.dh2)
	maskGrad(m.dh2, m.m2)
	m.t2.backward(m.h1, m.dh2, m.dh1)
	maskGrad(m.dh1, m.m1)
	m.t1.backward(m.in, m.dh1, nil)
	return loss
}

func (m *multiTaskMLP) Clone() Model {
	c := newMultiTaskMLP(0)
	copy(c.params, m.params)
	return c
}

func (m *multiTaskMLP) Cost() CostProfile {
	trunkMACs := float64(multiTaskDenseDim*multiTaskHidden + multiTaskHidden +
		multiTaskHidden*multiTaskHidden + multiTaskHidden +
		multiTaskHidden*multiTaskTrunkOut + multiTaskTrunkOut)
	headMACs := float64(len(m.params)) - trunkMACs
	return CostProfile{
		// A mobile runtime trains each task head as its own graph,
		// re-executing the shared trunk per head — 3x the trunk cost per
		// training step, the reason model E's device time (Table 5:
		// 238s) far exceeds its single-pass parameter count's share.
		TrainFLOPs:         6 * (3*trunkMACs + headMACs),
		InferFLOPs:         2 * (trunkMACs + headMACs),
		MatmulFrac:         0.99,
		PrepCostPerExample: multiTaskDenseDim + 3*24, // wide features + per-task labels
		WeightBytes:        4 * len(m.params),
		AssetBytes:         3800 << 10, // shared feature-transform assets
		ActivationFloats: multiTaskDenseDim + 3*multiTaskHidden +
			3*multiTaskTrunkOut + 3*multiTaskHeadDim + 8,
	}
}
