package model

import (
	"flint/internal/tensor"
	"fmt"
	"math"
	"math/rand"

	"flint/internal/data"
)

// Schedule yields the learning rate for a given communication round.
// Fig 10 of the paper shows how the choice of exponential-decay schedule
// drives FL training stability.
type Schedule interface {
	LR(round int) float64
	String() string
}

// ConstantLR is a fixed learning rate.
type ConstantLR float64

// LR implements Schedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

func (c ConstantLR) String() string { return fmt.Sprintf("const(%g)", float64(c)) }

// ExpDecayLR decays the base rate by Rate every DecaySteps rounds:
// lr(t) = Base · Rate^(t/DecaySteps), optionally floored.
type ExpDecayLR struct {
	Base       float64
	Rate       float64
	DecaySteps int
	Floor      float64
}

// LR implements Schedule.
func (e ExpDecayLR) LR(round int) float64 {
	if e.DecaySteps <= 0 {
		return e.Base
	}
	lr := e.Base * math.Pow(e.Rate, float64(round)/float64(e.DecaySteps))
	if lr < e.Floor {
		return e.Floor
	}
	return lr
}

func (e ExpDecayLR) String() string {
	return fmt.Sprintf("exp(base=%g rate=%g steps=%d)", e.Base, e.Rate, e.DecaySteps)
}

// LocalConfig controls one client's local training pass (the E local epochs
// of the task-duration model).
type LocalConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// ProxMu adds FedProx's proximal term μ/2·‖w − w₀‖² to the local
	// objective (Li et al., 2020), limiting client drift under the data
	// heterogeneity the proxy datasets encode. Zero disables it.
	ProxMu float64
}

// Validate reports configuration errors.
func (c LocalConfig) Validate() error {
	if c.Epochs <= 0 {
		return fmt.Errorf("model: local epochs must be positive, got %d", c.Epochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("model: batch size must be positive, got %d", c.BatchSize)
	}
	if c.LR <= 0 {
		return fmt.Errorf("model: learning rate must be positive, got %g", c.LR)
	}
	return nil
}

// TrainLocal runs mini-batch SGD over the examples for the configured number
// of epochs, shuffling each epoch with rng, and returns the mean training
// loss of the final epoch. The model is mutated in place.
func TrainLocal(m Model, examples []*data.Example, cfg LocalConfig, rng *rand.Rand) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(examples) == 0 {
		return 0, fmt.Errorf("model: TrainLocal with no examples")
	}
	if cfg.ProxMu < 0 {
		return 0, fmt.Errorf("model: ProxMu must be >= 0, got %g", cfg.ProxMu)
	}
	var base tensor.Vector
	if cfg.ProxMu > 0 {
		base = m.Params().Clone()
	}
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			m.ZeroGrads()
			var batchLoss float64
			for _, idx := range order[start:end] {
				batchLoss += m.TrainStep(examples[idx])
			}
			n := float64(end - start)
			// Average the accumulated gradient over the batch and step.
			m.Params().AddScaled(-cfg.LR/n, m.Grads())
			if cfg.ProxMu > 0 {
				// Proximal pull toward the round's base model:
				// w -= lr·μ·(w − w₀).
				params := m.Params()
				for i := range params {
					params[i] -= cfg.LR * cfg.ProxMu * (params[i] - base[i])
				}
			}
			epochLoss += batchLoss
		}
		lastLoss = epochLoss / float64(len(order))
	}
	m.ZeroGrads()
	return lastLoss, nil
}

// CentralizedConfig drives the offline baseline trainer used for Table 4's
// "centralized counterpart".
type CentralizedConfig struct {
	Epochs    int
	BatchSize int
	Schedule  Schedule
	Seed      int64
}

// TrainCentralized runs the centralized baseline: epochs of mini-batch SGD
// over the pooled dataset with the round-indexed schedule applied per epoch.
// Returns the final-epoch mean loss.
func TrainCentralized(m Model, ds *data.Dataset, cfg CentralizedConfig) (float64, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return 0, fmt.Errorf("model: centralized config needs positive epochs/batch, got %d/%d", cfg.Epochs, cfg.BatchSize)
	}
	if cfg.Schedule == nil {
		return 0, fmt.Errorf("model: centralized config needs a schedule")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var loss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		local := LocalConfig{Epochs: 1, BatchSize: cfg.BatchSize, LR: cfg.Schedule.LR(epoch)}
		var err error
		loss, err = TrainLocal(m, ds.Examples, local, rng)
		if err != nil {
			return 0, err
		}
	}
	return loss, nil
}
