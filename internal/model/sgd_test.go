package model

import (
	"math"
	"math/rand"
	"testing"

	"flint/internal/data"
	"flint/internal/tensor"
)

func adsBatch(t *testing.T, n int, seed int64) []*data.Example {
	t.Helper()
	spec, err := InputSpecFor(KindB)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.Dummy(spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Examples
}

func TestProxMuPullsTowardBase(t *testing.T) {
	examples := adsBatch(t, 64, 3)
	run := func(mu float64) float64 {
		m, err := New(KindB, 9)
		if err != nil {
			t.Fatal(err)
		}
		base := m.Params().Clone()
		rng := rand.New(rand.NewSource(1))
		if _, err := TrainLocal(m, examples, LocalConfig{Epochs: 3, BatchSize: 16, LR: 0.3, ProxMu: mu}, rng); err != nil {
			t.Fatal(err)
		}
		drift := m.Params().Clone()
		drift.Sub(base)
		return drift.Norm2()
	}
	free := run(0)
	prox := run(1.0)
	if prox >= free {
		t.Fatalf("FedProx must limit drift: mu=1 drift %v >= mu=0 drift %v", prox, free)
	}
	if prox == 0 {
		t.Fatal("proximal training must still move the model")
	}
}

func TestProxMuValidation(t *testing.T) {
	m, _ := New(KindA, 1)
	rng := rand.New(rand.NewSource(1))
	spec, _ := InputSpecFor(KindA)
	ds, _ := data.Dummy(spec, 4, 1)
	if _, err := TrainLocal(m, ds.Examples, LocalConfig{Epochs: 1, BatchSize: 2, LR: 0.1, ProxMu: -1}, rng); err == nil {
		t.Fatal("negative mu must fail")
	}
}

func TestTrainLocalReducesLoss(t *testing.T) {
	// Training loss over epochs must drop on a learnable task.
	g, err := data.NewAdsGenerator(data.DefaultAdsConfig(50, 7))
	if err != nil {
		t.Fatal(err)
	}
	train := data.Pool(g, 20)
	m, err := New(KindB, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	first, err := TrainLocal(m, train.Examples, LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for e := 0; e < 4; e++ {
		last, err = TrainLocal(m, train.Examples, LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1}, rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestTrainLocalDeterministicGivenSeed(t *testing.T) {
	examples := adsBatch(t, 32, 11)
	run := func() tensor.Vector {
		m, _ := New(KindB, 2)
		rng := rand.New(rand.NewSource(42))
		if _, err := TrainLocal(m, examples, LocalConfig{Epochs: 2, BatchSize: 8, LR: 0.2}, rng); err != nil {
			t.Fatal(err)
		}
		return m.Params().Clone()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("local training must be deterministic given the seed")
		}
	}
}

func TestTrainLocalLeavesGradsClean(t *testing.T) {
	examples := adsBatch(t, 8, 1)
	m, _ := New(KindB, 2)
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainLocal(m, examples, LocalConfig{Epochs: 1, BatchSize: 4, LR: 0.1}, rng); err != nil {
		t.Fatal(err)
	}
	if m.Grads().Norm2() != 0 {
		t.Fatal("TrainLocal must zero gradients on exit")
	}
}

func TestTrainCentralizedValidation(t *testing.T) {
	m, _ := New(KindA, 1)
	ds := &data.Dataset{Examples: adsBatch(t, 4, 1)}
	if _, err := TrainCentralized(m, ds, CentralizedConfig{Epochs: 0, BatchSize: 1, Schedule: ConstantLR(0.1)}); err == nil {
		t.Fatal("zero epochs must fail")
	}
	if _, err := TrainCentralized(m, ds, CentralizedConfig{Epochs: 1, BatchSize: 1}); err == nil {
		t.Fatal("missing schedule must fail")
	}
}

func TestBatchGradientEqualsMeanOfExampleGradients(t *testing.T) {
	// Property: the batch-averaged update equals the mean of per-example
	// gradients (our SGD step divides the accumulated gradient by n).
	m, _ := New(KindA, 3)
	spec, _ := InputSpecFor(KindA)
	ds, _ := data.Dummy(spec, 4, 2)

	// Accumulate over the batch.
	m.ZeroGrads()
	for _, ex := range ds.Examples {
		m.TrainStep(ex)
	}
	batch := m.Grads().Clone()
	batch.Scale(1.0 / 4)

	// Mean of singles.
	mean := tensor.NewVector(m.NumParams())
	for _, ex := range ds.Examples {
		m.ZeroGrads()
		m.TrainStep(ex)
		mean.AddScaled(1.0/4, m.Grads())
	}
	diff := batch.Clone()
	diff.Sub(mean)
	if diff.Norm2() > 1e-10*math.Max(1, mean.Norm2()) {
		t.Fatalf("batch accumulation mismatch: %v", diff.Norm2())
	}
}
