package model

import (
	"math/rand"

	"flint/internal/tensor"
)

// dense is a fully-connected layer with weight [out x in] and bias [out],
// with parameter and gradient views carved from the owning model's arenas.
type dense struct {
	w, gw *tensor.Matrix
	b, gb tensor.Vector
}

func newDense(p, g *arena, in, out int) *dense {
	return &dense{w: p.mat(out, in), gw: g.mat(out, in), b: p.vec(out), gb: g.vec(out)}
}

func (d *dense) init(rng *rand.Rand) {
	tensor.XavierInit(d.w.Data, d.w.Cols, d.w.Rows, rng)
	d.b.Zero()
}

// forward computes out = w*in + b.
func (d *dense) forward(in, out tensor.Vector) {
	d.w.MulVec(in, out)
	out.Add(d.b)
}

// backward accumulates gradients given the input activation and the
// gradient dout flowing into this layer's output; if din is non-nil it
// receives the gradient w.r.t. the input.
func (d *dense) backward(in, dout, din tensor.Vector) {
	d.gw.AddOuterScaled(1, dout, in)
	d.gb.Add(dout)
	if din != nil {
		d.w.MulVecT(dout, din)
	}
}

func (d *dense) numParams() int { return d.w.Rows*d.w.Cols + len(d.b) }

// embedding is a [vocab x dim] table with mean pooling over a token
// sequence. Lookups are true gathers in this Go implementation, while the
// CostProfile charges the mobile-runtime (dense) cost where appropriate.
type embedding struct {
	w, gw *tensor.Matrix
}

func newEmbedding(p, g *arena, vocab, dim int) *embedding {
	return &embedding{w: p.mat(vocab, dim), gw: g.mat(vocab, dim)}
}

func (e *embedding) init(rng *rand.Rand) {
	tensor.NormalInit(e.w.Data, 0.05, rng)
}

// meanForward writes the mean of the token rows into out (len dim).
// An empty token list yields the zero vector.
func (e *embedding) meanForward(tokens []int, out tensor.Vector) {
	out.Zero()
	if len(tokens) == 0 {
		return
	}
	for _, t := range tokens {
		out.Add(e.w.Row(clampIndex(t, e.w.Rows)))
	}
	out.Scale(1 / float64(len(tokens)))
}

// meanBackward scatters dout/len into the gradient rows of the tokens.
func (e *embedding) meanBackward(tokens []int, dout tensor.Vector) {
	if len(tokens) == 0 {
		return
	}
	inv := 1 / float64(len(tokens))
	for _, t := range tokens {
		e.gw.Row(clampIndex(t, e.gw.Rows)).AddScaled(inv, dout)
	}
}

// rowsForward writes each token's embedding row into seq[i] (a reusable
// [L][dim] buffer) for sequence models.
func (e *embedding) rowsForward(tokens []int, seq []tensor.Vector) {
	for i, t := range tokens {
		copy(seq[i], e.w.Row(clampIndex(t, e.w.Rows)))
	}
}

// rowsBackward scatters per-position gradients back into the table.
func (e *embedding) rowsBackward(tokens []int, dseq []tensor.Vector) {
	for i, t := range tokens {
		e.gw.Row(clampIndex(t, e.gw.Rows)).Add(dseq[i])
	}
}

func (e *embedding) numParams() int { return e.w.Rows * e.w.Cols }

// sparseLinear maps a multi-hot index set into a dense output:
// out = b + Σ_{i∈idx} W[i]. It is the first layer of model B; a mobile
// runtime would execute it as a dense [out x sparseDim] matmul, which is
// why the CostProfile charges the dense cost.
type sparseLinear struct {
	w, gw *tensor.Matrix // [sparseDim x out], row-gather layout
	b, gb tensor.Vector
}

func newSparseLinear(p, g *arena, sparseDim, out int) *sparseLinear {
	return &sparseLinear{w: p.mat(sparseDim, out), gw: g.mat(sparseDim, out), b: p.vec(out), gb: g.vec(out)}
}

func (s *sparseLinear) init(rng *rand.Rand) {
	tensor.XavierInit(s.w.Data, s.w.Rows, s.w.Cols, rng)
	s.b.Zero()
}

func (s *sparseLinear) forward(idx []int, out tensor.Vector) {
	copy(out, s.b)
	for _, i := range idx {
		out.Add(s.w.Row(clampIndex(i, s.w.Rows)))
	}
}

func (s *sparseLinear) backward(idx []int, dout tensor.Vector) {
	s.gb.Add(dout)
	for _, i := range idx {
		s.gw.Row(clampIndex(i, s.gw.Rows)).Add(dout)
	}
}

func (s *sparseLinear) numParams() int { return s.w.Rows*s.w.Cols + len(s.b) }

// conv1d is a temporal convolution over an embedded sequence with kernel
// width k, mapping in channels to out channels, with same-length output via
// zero padding at the tail. Weights are stored [out x (k*in)].
type conv1d struct {
	w, gw  *tensor.Matrix
	b, gb  tensor.Vector
	k, in  int
	outDim int
}

func newConv1D(p, g *arena, k, in, out int) *conv1d {
	return &conv1d{
		w: p.mat(out, k*in), gw: g.mat(out, k*in),
		b: p.vec(out), gb: g.vec(out),
		k: k, in: in, outDim: out,
	}
}

func (c *conv1d) init(rng *rand.Rand) {
	tensor.XavierInit(c.w.Data, c.k*c.in, c.outDim, rng)
	c.b.Zero()
}

// forward computes out[t] = w * window(seq, t) + b for t in [0, L), reading
// zero vectors past the end of seq. seq is [L][in]; out is [L][outDim].
func (c *conv1d) forward(seq, out []tensor.Vector, window tensor.Vector) {
	for t := range seq {
		c.gatherWindow(seq, t, window)
		c.w.MulVec(window, out[t])
		out[t].Add(c.b)
	}
}

// backward accumulates weight/bias gradients and, if dseq is non-nil, the
// gradient w.r.t. the input sequence. dout is [L][outDim].
func (c *conv1d) backward(seq, dout, dseq []tensor.Vector, window, dwindow tensor.Vector) {
	for t := range seq {
		c.gatherWindow(seq, t, window)
		c.gw.AddOuterScaled(1, dout[t], window)
		c.gb.Add(dout[t])
		if dseq != nil {
			c.w.MulVecT(dout[t], dwindow)
			for dt := 0; dt < c.k; dt++ {
				pos := t + dt
				if pos >= len(dseq) {
					break
				}
				dseq[pos].Add(dwindow[dt*c.in : (dt+1)*c.in])
			}
		}
	}
}

func (c *conv1d) gatherWindow(seq []tensor.Vector, t int, window tensor.Vector) {
	for dt := 0; dt < c.k; dt++ {
		dst := window[dt*c.in : (dt+1)*c.in]
		pos := t + dt
		if pos < len(seq) {
			copy(dst, seq[pos])
		} else {
			dst.Zero()
		}
	}
}

func (c *conv1d) numParams() int { return c.w.Rows*c.w.Cols + len(c.b) }

// globalMaxPool reduces [L][dim] to [dim] keeping argmax positions for the
// backward pass.
func globalMaxPool(seq []tensor.Vector, out tensor.Vector, argmax []int) {
	for j := range out {
		best, bestT := seq[0][j], 0
		for t := 1; t < len(seq); t++ {
			if seq[t][j] > best {
				best, bestT = seq[t][j], t
			}
		}
		out[j] = best
		argmax[j] = bestT
	}
}

func globalMaxPoolBackward(dout tensor.Vector, argmax []int, dseq []tensor.Vector) {
	for j, t := range argmax {
		dseq[t][j] += dout[j]
	}
}

// clampIndex bounds-checks gather indices defensively; generators guarantee
// valid ranges, but a clamped read beats a panic mid-simulation.
func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// seqBuffer allocates an [L][dim] reusable activation buffer.
func seqBuffer(l, dim int) []tensor.Vector {
	buf := tensor.NewVector(l * dim)
	out := make([]tensor.Vector, l)
	for i := range out {
		out[i] = buf[i*dim : (i+1)*dim]
	}
	return out
}

// zeroSeq zeroes every row of a sequence buffer.
func zeroSeq(seq []tensor.Vector) {
	for _, r := range seq {
		r.Zero()
	}
}
