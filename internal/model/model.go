// Package model implements the pure-Go training stack that substitutes for
// the paper's TFLite on-device runtime: the five mobile-scale architectures
// of Table 5 (models A–E), their forward/backward passes, SGD with the
// learning-rate schedules of Fig 10, and flat-parameter views used by the
// federated aggregators.
//
// Every model stores its parameters (and gradients) in a single flat vector;
// layers are views sliced into that vector. This makes FedAvg/FedBuff
// aggregation, serialization, and update-size accounting trivial and
// allocation-free.
package model

import (
	"fmt"

	"flint/internal/data"
	"flint/internal/tensor"
)

// Kind identifies one of the paper's five benchmark architectures.
type Kind string

// The model zoo of Table 5.
const (
	KindA Kind = "A" // Tiny Neural Net            (~1.51k params)
	KindB Kind = "B" // MLP w/ sparse features     (~189k params)
	KindC Kind = "C" // MLP w/ medium embedding    (~208k params)
	KindD Kind = "D" // CNN w/ large embedding     (~390k params)
	KindE Kind = "E" // Multi-task MLP             (~922k params)
)

// Kinds lists the zoo in Table 5 order.
var Kinds = []Kind{KindA, KindB, KindC, KindD, KindE}

// Model is a trainable on-device architecture. Implementations are not safe
// for concurrent use; clone per goroutine.
type Model interface {
	// Kind returns the zoo identifier.
	Kind() Kind
	// Name returns the Table 5 description.
	Name() string
	// NumParams returns the trainable parameter count.
	NumParams() int
	// Params returns the flat parameter vector, aliasing internal storage.
	Params() tensor.Vector
	// Grads returns the flat gradient accumulator, aliasing internal storage.
	Grads() tensor.Vector
	// SetParams copies p into the model. Lengths must match.
	SetParams(p tensor.Vector) error
	// Predict returns the primary-task probability (or ranking score in
	// (0,1)) for ex.
	Predict(ex *data.Example) float64
	// TrainStep runs forward+backward on ex, accumulating gradients, and
	// returns the example loss.
	TrainStep(ex *data.Example) float64
	// ZeroGrads clears the gradient accumulator.
	ZeroGrads()
	// Clone returns a deep copy with independent parameters and gradients.
	Clone() Model
	// Cost returns the static cost profile used by the on-device
	// benchmark harness and the task-duration model.
	Cost() CostProfile
}

// CostProfile captures the per-model static costs consumed by the device
// simulator and the resource forecaster (paper §3.2, §3.5).
type CostProfile struct {
	// TrainFLOPs is the per-example training cost in FLOPs under a mobile
	// runtime that executes sparse inputs as dense ops (the reason model
	// B's device time dwarfs model C's despite similar parameter counts).
	TrainFLOPs float64
	// InferFLOPs is the per-example forward cost in FLOPs.
	InferFLOPs float64
	// MatmulFrac is the fraction of FLOPs spent in dense matmuls; the
	// remainder is gather/elementwise work. Devices have different
	// efficiencies for each (Fig 4's "optimized for one task, worse for
	// another").
	MatmulFrac float64
	// PrepCostPerExample counts feature-processing work per example in
	// abstract prep-units (string hashing, vocab lookups, tokenization);
	// the device profile converts it to time.
	PrepCostPerExample float64
	// WeightBytes is the serialized float32 weight size — the gradient
	// update size M in taskDuration(k) = t·E·|Dk| + 2M/N.
	WeightBytes int
	// WireOverheadBytes is per-transfer payload beyond the weights (the
	// ops bundle for tiny models, vocab deltas), visible in Table 5's
	// "Network" column for models A and C.
	WireOverheadBytes int
	// AssetBytes counts bundled assets (vocabulary files, mappings) that
	// ship with the model but are not trained (§4.1's vocab files).
	AssetBytes int
	// ActivationFloats is the peak activation buffer size (floats) for a
	// single-example training step; drives the memory estimate.
	ActivationFloats int
}

// StorageBytes is the on-disk footprint: weights plus bundled assets
// (Table 5 "Storage").
func (c CostProfile) StorageBytes() int { return c.WeightBytes + c.AssetBytes }

// TransferBytes is the one-way payload M of a model download or gradient
// upload: weights plus wire overhead.
func (c CostProfile) TransferBytes() int { return c.WeightBytes + c.WireOverheadBytes }

// NetworkBytesPerRound is the download+upload payload of one participation
// (Table 5 "Network"): 2M in the paper's task-duration model.
func (c CostProfile) NetworkBytesPerRound() int { return 2 * c.TransferBytes() }

// MemoryBytes estimates peak training memory: float32 weights, gradients and
// a momentum-free optimizer state, activation buffers, plus the runtime
// arena overhead the interpreter allocates per graph.
func (c CostProfile) MemoryBytes(runtimeArena int) int {
	return 2*c.WeightBytes + 4*c.ActivationFloats + runtimeArena
}

// New constructs a model of the given kind with Xavier-initialized weights
// drawn from seed.
func New(kind Kind, seed int64) (Model, error) {
	switch kind {
	case KindA:
		return newTinyNN(seed), nil
	case KindB:
		return newSparseMLP(seed), nil
	case KindC:
		return newEmbedMLP(seed), nil
	case KindD:
		return newEmbedCNN(seed), nil
	case KindE:
		return newMultiTaskMLP(seed), nil
	default:
		return nil, fmt.Errorf("model: unknown kind %q", kind)
	}
}

// InputSpecFor returns the dummy-data spec matching each architecture's
// input schema, used by the on-device benchmark harness (§4.1 "deploy them
// for training on dummy data").
func InputSpecFor(kind Kind) (data.InputSpec, error) {
	switch kind {
	case KindA:
		return data.InputSpec{DenseDim: tinyDenseDim}, nil
	case KindB:
		return data.InputSpec{SparseDim: sparseDim, ActiveLo: 20, ActiveHi: 60}, nil
	case KindC:
		return data.InputSpec{DenseDim: embedMLPDenseDim, Vocab: embedMLPVocab, SeqLo: 8, SeqHi: 48}, nil
	case KindD:
		return data.InputSpec{Vocab: embedCNNVocab, SeqLo: 8, SeqHi: 48}, nil
	case KindE:
		return data.InputSpec{DenseDim: multiTaskDenseDim, Tasks: multiTaskHeads}, nil
	default:
		return data.InputSpec{}, fmt.Errorf("model: unknown kind %q", kind)
	}
}

// arena carves layer views out of one flat vector.
type arena struct {
	buf tensor.Vector
	off int
}

func (a *arena) mat(rows, cols int) *tensor.Matrix {
	m := &tensor.Matrix{Rows: rows, Cols: cols, Data: a.buf[a.off : a.off+rows*cols]}
	a.off += rows * cols
	return m
}

func (a *arena) vec(n int) tensor.Vector {
	v := a.buf[a.off : a.off+n]
	a.off += n
	return v
}

func (a *arena) remaining() int { return len(a.buf) - a.off }

// copyParams validates length and copies p into dst.
func copyParams(dst, p tensor.Vector, kind Kind) error {
	if len(p) != len(dst) {
		return fmt.Errorf("model %s: SetParams length %d, want %d", kind, len(p), len(dst))
	}
	copy(dst, p)
	return nil
}
