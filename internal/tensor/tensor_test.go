package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(Vector{4, 5, 6})
	want := Vector{5, 7, 9}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Add: got %v want %v", v, want)
		}
	}
	v.Sub(Vector{1, 1, 1})
	if v[0] != 4 || v[1] != 6 || v[2] != 8 {
		t.Fatalf("Sub: got %v", v)
	}
	v.Scale(0.5)
	if v[0] != 2 || v[1] != 3 || v[2] != 4 {
		t.Fatalf("Scale: got %v", v)
	}
	v.AddScaled(2, Vector{1, 1, 1})
	if v[0] != 4 || v[1] != 5 || v[2] != 6 {
		t.Fatalf("AddScaled: got %v", v)
	}
}

func TestVectorDotNormSum(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(Vector{1, 2}); got != 11 {
		t.Fatalf("Dot: got %v want 11", got)
	}
	if got := v.Norm2(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2: got %v want 5", got)
	}
	if got := v.Sum(); got != 7 {
		t.Fatalf("Sum: got %v want 7", got)
	}
}

func TestVectorMaxArgMax(t *testing.T) {
	v := Vector{-1, 7, 3}
	if v.Max() != 7 {
		t.Fatalf("Max: got %v", v.Max())
	}
	if v.ArgMax() != 1 {
		t.Fatalf("ArgMax: got %v", v.ArgMax())
	}
	var empty Vector
	if empty.ArgMax() != -1 {
		t.Fatal("ArgMax on empty should be -1")
	}
	if !math.IsInf(empty.Max(), -1) {
		t.Fatal("Max on empty should be -Inf")
	}
}

func TestVectorCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone must not alias original")
	}
}

func TestClip(t *testing.T) {
	v := Vector{3, 4} // norm 5
	f := v.Clip(10)
	if f != 1 || v[0] != 3 {
		t.Fatalf("Clip below bound must be identity, got factor %v vec %v", f, v)
	}
	f = v.Clip(2.5)
	if !almostEqual(f, 0.5, 1e-12) {
		t.Fatalf("Clip factor: got %v want 0.5", f)
	}
	if !almostEqual(v.Norm2(), 2.5, 1e-12) {
		t.Fatalf("Clip norm: got %v want 2.5", v.Norm2())
	}
	v.Clip(0)
	if v.Norm2() != 0 {
		t.Fatal("Clip(0) must zero the vector")
	}
}

func TestClipNormInvariant(t *testing.T) {
	// Property: after Clip(c) with c>0, norm <= c (+tolerance).
	f := func(xs []float64, c float64) bool {
		c = math.Abs(c)
		if c == 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			c = 1
		}
		v := make(Vector, len(xs))
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// Bound magnitudes so norms stay finite.
			v[i] = math.Mod(x, 1e6)
		}
		v.Clip(c)
		return v.Norm2() <= c*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, Vector{1, 2, 3, 4, 5, 6})
	out := NewVector(2)
	m.MulVec(Vector{1, 1, 1}, out)
	if out[0] != 6 || out[1] != 15 {
		t.Fatalf("MulVec: got %v", out)
	}
	tout := NewVector(3)
	m.MulVecT(Vector{1, 1}, tout)
	if tout[0] != 5 || tout[1] != 7 || tout[2] != 9 {
		t.Fatalf("MulVecT: got %v", tout)
	}
}

func TestMatrixMulVecTransposeConsistency(t *testing.T) {
	// Property: yᵀ(Mx) == (Mᵀy)ᵀx for random M, x, y.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		x, y := NewVector(c), NewVector(r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		mx := NewVector(r)
		m.MulVec(x, mx)
		mty := NewVector(c)
		m.MulVecT(y, mty)
		if !almostEqual(y.Dot(mx), mty.Dot(x), 1e-9) {
			t.Fatalf("transpose identity violated: %v vs %v", y.Dot(mx), mty.Dot(x))
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled(2, Vector{1, 2}, Vector{3, 4})
	want := Vector{6, 8, 12, 16}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuterScaled: got %v want %v", m.Data, want)
		}
	}
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(1, 1, 42)
	if m.At(1, 1) != 42 {
		t.Fatal("At/Set mismatch")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone must not alias")
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestSigmoidStable(t *testing.T) {
	if got := Sigmoid(0); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("Sigmoid(0)=%v", got)
	}
	if got := Sigmoid(1000); got != 1 {
		t.Fatalf("Sigmoid(1000)=%v want 1", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Fatalf("Sigmoid(-1000)=%v want 0", got)
	}
	// Symmetry property: sigmoid(-x) == 1 - sigmoid(x).
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return almostEqual(Sigmoid(-x), 1-Sigmoid(x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmax(t *testing.T) {
	in := Vector{1, 2, 3}
	out := NewVector(3)
	Softmax(in, out)
	if !almostEqual(out.Sum(), 1, 1e-12) {
		t.Fatalf("Softmax must sum to 1, got %v", out.Sum())
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("Softmax must be monotone in inputs: %v", out)
	}
	// Shift invariance.
	shifted := Vector{1001, 1002, 1003}
	out2 := NewVector(3)
	Softmax(shifted, out2)
	for i := range out {
		if !almostEqual(out[i], out2[i], 1e-9) {
			t.Fatalf("Softmax shift invariance: %v vs %v", out, out2)
		}
	}
}

func TestApplyReLU(t *testing.T) {
	v := Vector{-1, 0, 2}
	mask := NewVector(3)
	ApplyReLU(v, mask)
	if v[0] != 0 || v[1] != 0 || v[2] != 2 {
		t.Fatalf("ApplyReLU: got %v", v)
	}
	if mask[0] != 0 || mask[1] != 0 || mask[2] != 1 {
		t.Fatalf("ApplyReLU mask: got %v", mask)
	}
	// nil mask must not panic.
	ApplyReLU(Vector{-1, 1}, nil)
}

func TestLogLoss(t *testing.T) {
	if got := LogLoss(0.5, 1); !almostEqual(got, math.Ln2, 1e-12) {
		t.Fatalf("LogLoss(0.5,1)=%v want ln2", got)
	}
	// Must be finite even at the boundary.
	if got := LogLoss(0, 1); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("LogLoss(0,1)=%v must be finite", got)
	}
	if got := LogLoss(1, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("LogLoss(1,0)=%v must be finite", got)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewVector(1000)
	XavierInit(v, 10, 10, rng)
	bound := math.Sqrt(6.0 / 20.0)
	for _, x := range v {
		if math.Abs(x) > bound {
			t.Fatalf("XavierInit out of bounds: %v > %v", x, bound)
		}
	}
	if v.Norm2() == 0 {
		t.Fatal("XavierInit produced all zeros")
	}
}
