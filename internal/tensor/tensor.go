// Package tensor provides the minimal dense linear algebra used by the
// FLINT training stack: float64 vectors and row-major matrices with the
// in-place and allocating operations needed for forward/backward passes,
// SGD updates, and federated aggregation.
//
// The package is deliberately small: models in this repository are the
// mobile-scale architectures of the paper's Table 5 (1.5k–922k parameters),
// so a straightforward scalar implementation is fast enough and keeps the
// module dependency-free.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Add accumulates o into v element-wise. It panics if lengths differ.
func (v Vector) Add(o Vector) {
	mustSameLen(len(v), len(o), "Add")
	for i := range v {
		v[i] += o[i]
	}
}

// Sub subtracts o from v element-wise. It panics if lengths differ.
func (v Vector) Sub(o Vector) {
	mustSameLen(len(v), len(o), "Sub")
	for i := range v {
		v[i] -= o[i]
	}
}

// AddScaled accumulates alpha*o into v. It panics if lengths differ.
func (v Vector) AddScaled(alpha float64, o Vector) {
	mustSameLen(len(v), len(o), "AddScaled")
	for i := range v {
		v[i] += alpha * o[i]
	}
}

// Scale multiplies every element of v by alpha.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and o. It panics if lengths differ.
func (v Vector) Dot(o Vector) float64 {
	mustSameLen(len(v), len(o), "Dot")
	var s float64
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element of v, or -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum element, or -1 for an empty vector.
func (v Vector) ArgMax() int {
	idx, m := -1, math.Inf(-1)
	for i, x := range v {
		if x > m {
			m, idx = x, i
		}
	}
	return idx
}

// Clip bounds the Euclidean norm of v to maxNorm, scaling in place when the
// norm exceeds the bound. It returns the scaling factor applied (1 when no
// clipping occurred). Clipping to a non-positive bound zeroes the vector.
func (v Vector) Clip(maxNorm float64) float64 {
	if maxNorm <= 0 {
		v.Zero()
		return 0
	}
	n := v.Norm2()
	if n <= maxNorm || n == 0 {
		return 1
	}
	f := maxNorm / n
	v.Scale(f)
	return f
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       Vector // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes out = m * x (out has length Rows, x length Cols).
// out may not alias x. It panics on shape mismatch.
func (m *Matrix) MulVec(x, out Vector) {
	mustSameLen(len(x), m.Cols, "MulVec x")
	mustSameLen(len(out), m.Rows, "MulVec out")
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
}

// MulVecT computes out = mᵀ * x (out has length Cols, x length Rows).
// out may not alias x. It panics on shape mismatch.
func (m *Matrix) MulVecT(x, out Vector) {
	mustSameLen(len(x), m.Rows, "MulVecT x")
	mustSameLen(len(out), m.Cols, "MulVecT out")
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			out[j] += w * xi
		}
	}
}

// AddOuterScaled accumulates alpha * x ⊗ y into m, where x has length Rows
// and y has length Cols. Used for weight-gradient accumulation.
func (m *Matrix) AddOuterScaled(alpha float64, x, y Vector) {
	mustSameLen(len(x), m.Rows, "AddOuterScaled x")
	mustSameLen(len(y), m.Cols, "AddOuterScaled y")
	for i := 0; i < m.Rows; i++ {
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += ax * yj
		}
	}
}

func mustSameLen(got, want int, op string) {
	if got != want {
		panic(fmt.Sprintf("tensor: %s: length %d, want %d", op, got, want))
	}
}
