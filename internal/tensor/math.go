package tensor

import (
	"math"
	"math/rand"
)

// Sigmoid returns 1/(1+exp(-x)), numerically stable for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// ReLU returns max(0, x).
func ReLU(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Tanh returns the hyperbolic tangent of x.
func Tanh(x float64) float64 { return math.Tanh(x) }

// ApplyReLU applies ReLU element-wise in place and records the active mask in
// mask (1 where x>0). mask may be nil.
func ApplyReLU(v, mask Vector) {
	for i, x := range v {
		if x > 0 {
			if mask != nil {
				mask[i] = 1
			}
		} else {
			v[i] = 0
			if mask != nil {
				mask[i] = 0
			}
		}
	}
}

// Softmax writes the softmax of in to out (shift-stabilized).
// in and out may alias.
func Softmax(in, out Vector) {
	mustSameLen(len(out), len(in), "Softmax")
	m := in.Max()
	var z float64
	for i, x := range in {
		e := math.Exp(x - m)
		out[i] = e
		z += e
	}
	if z == 0 {
		z = 1
	}
	for i := range out {
		out[i] /= z
	}
}

// XavierInit fills v with uniform values in ±sqrt(6/(fanIn+fanOut)),
// the Glorot initialization used for every dense layer in the model zoo.
func XavierInit(v Vector, fanIn, fanOut int, rng *rand.Rand) {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * bound
	}
}

// NormalInit fills v with N(0, std²) values.
func NormalInit(v Vector, std float64, rng *rand.Rand) {
	for i := range v {
		v[i] = rng.NormFloat64() * std
	}
}

// LogLoss returns the binary cross-entropy for prediction p in (0,1)
// against label y in {0,1}, with clamping for numerical stability.
func LogLoss(p, y float64) float64 {
	const eps = 1e-12
	p = math.Max(eps, math.Min(1-eps, p))
	if y >= 0.5 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}
