// Package report renders experiment outputs — the tables and figure series
// of the paper — as aligned ASCII tables, CSV, and terminal sparklines, so
// every benchmark and cmd tool prints the same rows the paper reports.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (quotes on demand).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			parts[i] = c
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// sparkRunes are the eight block heights of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a compact bar string — how the cmd
// tools show Fig 2's availability curve and Fig 10's training curves.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat("?", len(values))
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteRune('·')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Dur formats seconds into the paper's human units (hrs/days).
func Dur(sec float64) string {
	switch {
	case sec >= 2*86400:
		return fmt.Sprintf("%.1f days", sec/86400)
	case sec >= 2*3600:
		return fmt.Sprintf("%.1f hrs", sec/3600)
	case sec >= 120:
		return fmt.Sprintf("%.1f min", sec/60)
	default:
		return fmt.Sprintf("%.1f s", sec)
	}
}

// MB formats a byte count in megabytes.
func MB(bytes int) string { return fmt.Sprintf("%.2f MB", float64(bytes)/1e6) }
