package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: all data lines same prefix width for second column.
	if tb.NumRows() != 2 {
		t.Fatalf("rows %d", tb.NumRows())
	}
}

func TestTablePadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1") // short row padded
	tb.AddRow("1", "2", "3", "4")
	out := tb.String()
	if strings.Contains(out, "4") {
		t.Fatal("overflow cells must be dropped")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("with,comma", `with"quote`)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote not escaped: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length: %q", s)
	}
	if []rune(s)[0] == []rune(s)[3] {
		t.Fatal("extremes must differ")
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	flat := Sparkline([]float64{5, 5})
	if []rune(flat)[0] != []rune(flat)[1] {
		t.Fatal("flat series must be uniform")
	}
	withNaN := Sparkline([]float64{1, math.NaN(), 2})
	if !strings.Contains(withNaN, "·") {
		t.Fatalf("NaN should render as dot: %q", withNaN)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.285) != "28.5%" {
		t.Fatalf("Pct: %s", Pct(0.285))
	}
	if !strings.Contains(Dur(3*86400), "days") {
		t.Fatal("Dur days")
	}
	if !strings.Contains(Dur(3*3600), "hrs") {
		t.Fatal("Dur hrs")
	}
	if !strings.Contains(Dur(300), "min") {
		t.Fatal("Dur min")
	}
	if !strings.Contains(Dur(10), "s") {
		t.Fatal("Dur sec")
	}
	if MB(760000) != "0.76 MB" {
		t.Fatalf("MB: %s", MB(760000))
	}
}
