// Package flint is a reproduction of "FLINT: A Platform for Federated
// Learning Integration" (MLSys 2023): a device-cloud collaborative FL
// platform that integrates with a centralized ML stack and provides the
// tooling to decide whether — and how — to move a production model to
// cross-device federated learning.
//
// The package is a facade over the internal subsystems:
//
//   - real-world measurement: on-device benchmarks (Table 5, Fig 4),
//     availability traces and participation criteria (Table 1, Fig 2),
//     device population modeling (Fig 1);
//   - the proxy data generator with natural and Dirichlet partitioning
//     (Table 2, Fig 5);
//   - the device-cloud feature catalog (Fig 6);
//   - the experimental framework: a virtual-clock leader/executor simulator
//     with synchronous FedAvg and asynchronous FedBuff (Table 3, Figs 7/8/10);
//   - resource forecasting (§3.5) and the decision workflow (Fig 9);
//   - privacy/security evaluation: FL-DP, TEE-based SecAgg, poisoning and
//     robust aggregation (§3.6).
//
// See examples/ for runnable entry points and DESIGN.md for the full system
// inventory.
package flint

import (
	"flint/internal/availability"
	"flint/internal/core"
	"flint/internal/data"
	"flint/internal/device"
	"flint/internal/fedsim"
	"flint/internal/model"
	"flint/internal/network"
	"flint/internal/partition"
)

// Case-study domains (§4).
type (
	// Domain identifies a case-study application (ads, messaging, search).
	Domain = core.Domain
	// Scale sizes an experiment run.
	Scale = core.Scale
	// Spec holds a domain's modeling choices.
	Spec = core.Spec
	// CaseStudyResult is one Table 4 row.
	CaseStudyResult = core.CaseStudyResult
	// ModeComparison is one Table 3 column.
	ModeComparison = core.ModeComparison
)

// Re-exported domain constants.
const (
	Ads       = core.Ads
	Messaging = core.Messaging
	Search    = core.Search
)

// Experiment scales.
var (
	SmallScale  = core.SmallScale
	MediumScale = core.MediumScale
)

// Simulation types (§3.4).
type (
	// SimConfig drives one simulation job.
	SimConfig = fedsim.Config
	// SimEnvironment carries the measured real-world inputs.
	SimEnvironment = fedsim.Environment
	// SimReport is the simulation output.
	SimReport = fedsim.Report
	// Model is a trainable on-device architecture.
	Model = model.Model
	// ModelKind identifies a Table 5 architecture.
	ModelKind = model.Kind
	// Criteria filters sessions into availability traces.
	Criteria = availability.Criteria
	// DeviceProfile describes one device model's capability.
	DeviceProfile = device.Profile
	// Table5Row is one row of the on-device benchmark table.
	Table5Row = device.Table5Row
	// ProxyStats is Table 2 metadata for a proxy dataset.
	ProxyStats = partition.Stats
	// Generator produces per-client proxy shards.
	Generator = data.Generator
)

// Training modes.
const (
	SyncFedAvg   = fedsim.Sync
	AsyncFedBuff = fedsim.Async
)

// Model zoo kinds (Table 5).
const (
	ModelA = model.KindA
	ModelB = model.KindB
	ModelC = model.KindC
	ModelD = model.KindD
	ModelE = model.KindE
)

// SpecFor returns a domain's default modeling spec.
func SpecFor(d Domain) (Spec, error) { return core.SpecFor(d) }

// BuildEnvironment assembles the simulation inputs for a domain.
func BuildEnvironment(spec Spec, scale Scale, seed int64) (*SimEnvironment, Generator, error) {
	return core.BuildEnvironment(spec, scale, seed)
}

// AsyncConfig builds a domain's FedBuff job configuration.
func AsyncConfig(spec Spec, scale Scale, seed int64) SimConfig {
	return core.AsyncConfig(spec, scale, seed)
}

// SyncConfig builds a domain's FedAvg job configuration.
func SyncConfig(spec Spec, scale Scale, seed int64) SimConfig {
	return core.SyncConfig(spec, scale, seed)
}

// RunSimulation executes one FL simulation job.
func RunSimulation(cfg SimConfig, env *SimEnvironment) (*SimReport, error) {
	return fedsim.Run(cfg, env)
}

// RunCaseStudy executes one domain's full §4 evaluation (Table 4 row).
func RunCaseStudy(d Domain, scale Scale, seed int64) (*CaseStudyResult, error) {
	return core.RunCaseStudy(d, scale, seed)
}

// CompareModes runs FedAvg vs FedBuff to a shared quality bar (Table 3).
func CompareModes(d Domain, scale Scale, seed int64, headroom float64) (*ModeComparison, error) {
	return core.CompareModes(d, scale, seed, headroom)
}

// NewModel constructs a Table 5 architecture.
func NewModel(kind ModelKind, seed int64) (Model, error) { return model.New(kind, seed) }

// BenchDevicePool returns the 27-device benchmark pool (§3.2).
func BenchDevicePool() []DeviceProfile { return device.BenchPool() }

// RunDeviceBenchmarks produces Table 5 over the given pool and record count.
func RunDeviceBenchmarks(pool []DeviceProfile, records int, seed int64) ([]Table5Row, error) {
	return device.Table5(pool, records, seed)
}

// DefaultBandwidth is the edge bandwidth model used in task durations.
var DefaultBandwidth = network.Default
