// Benchmark harness: one bench per table and figure of the paper (see
// DESIGN.md §4 for the index). Each bench regenerates its experiment and
// prints the measured rows next to the paper's values on the first
// iteration; `go test -bench=. -benchmem` reproduces the full evaluation.
package flint_test

import (
	"fmt"
	"sync"
	"testing"

	"flint/internal/availability"
	"flint/internal/core"
	"flint/internal/data"
	"flint/internal/device"
	"flint/internal/fedsim"
	"flint/internal/forecast"
	"flint/internal/metrics"
	"flint/internal/model"
	"flint/internal/network"
	"flint/internal/partition"
	"flint/internal/report"
)

// benchScale balances fidelity against runtime for the simulation benches:
// enough rounds for Table 4's parity shape, small enough to finish in
// seconds per domain.
var benchScale = core.Scale{
	Clients: 200, TestRecords: 2000, TraceDays: 14,
	MaxRounds: 150, EvalEvery: 10, MaxShardExamples: 250, SessionsPerDay: 6,
}

// printOnce guards each bench's one-time table output.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// ---------------------------------------------------------------- Figure 1

func BenchmarkFigure1DeviceDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pm := device.DefaultPopulation()
		devs, err := pm.Sample(100000)
		if err != nil {
			b.Fatal(err)
		}
		ios := device.Distribution(devs, device.IOS, 8)
		android := device.Distribution(devs, device.Android, 8)
		once("fig1", func() {
			fmt.Printf("\nFigure 1 — device distribution (100k users):\n")
			fmt.Printf("  iOS:     %4d models, top-8 %s, gray %s (paper: concentrated)\n",
				ios.DistinctModels, report.Pct(ios.TopShares[len(ios.TopShares)-1]), report.Pct(ios.GrayShare))
			fmt.Printf("  Android: %4d models, top-8 %s, gray %s (paper: diverse, ~8k device types overall)\n",
				android.DistinctModels, report.Pct(android.TopShares[len(android.TopShares)-1]), report.Pct(android.GrayShare))
		})
	}
}

// ---------------------------------------------------- Figure 2 and Table 1

func BenchmarkTable1Criteria(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := availability.DefaultLogConfig(3000, 1)
		sessions, err := availability.GenerateLog(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t1, err := availability.ComputeTable1(sessions)
		if err != nil {
			b.Fatal(err)
		}
		once("table1", func() {
			fmt.Printf("\nTable 1 — availability after criteria (measured | paper):\n")
			fmt.Printf("  A WiFi          %s | 70%%\n", report.Pct(t1.WiFi))
			fmt.Printf("  B battery>=80%%  %s | 34%%\n", report.Pct(t1.Battery))
			fmt.Printf("  C modern OS     %s | 93%%\n", report.Pct(t1.ModernOS))
			fmt.Printf("  A∩B∩C           %s | 22%%\n", report.Pct(t1.Intersect))
		})
	}
}

func BenchmarkFigure2Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := availability.DefaultLogConfig(3000, 1)
		sessions, err := availability.GenerateLog(cfg)
		if err != nil {
			b.Fatal(err)
		}
		trace := availability.BuildTrace(sessions)
		series, err := availability.ComputeSeries(trace, 3600)
		if err != nil {
			b.Fatal(err)
		}
		once("fig2", func() {
			fmt.Printf("\nFigure 2 — weekly availability (first week, hourly): %s\n",
				report.Sparkline(series.Normalized[:168]))
			fmt.Printf("  peak/trough %.1fx (paper: trough ≈ 15%% of weekly peak)\n", series.PeakTroughRatio())
		})
	}
}

// ---------------------------------------------------- Table 2 and Figure 5

func BenchmarkTable2ProxyStats(b *testing.B) {
	type row struct {
		name  string
		q     data.QuantityModel
		pop   int
		paper string
	}
	rows := []row{
		{"datasetA", data.AdsQuantity, 700_000, "avg 99 std 667 max 39,731"},
		{"datasetB", data.MessagingQuantity, 1_024_950, "avg 184 std 374 max 103,471"},
		{"datasetC", data.SearchQuantity, 16_422_290, "avg 1.53 std 1.47 max 406"},
	}
	for i := 0; i < b.N; i++ {
		stats := make([]partition.Stats, len(rows))
		for j, r := range rows {
			st, err := partition.QuantityStats(r.name, r.q, r.pop, 0, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			stats[j] = st
		}
		once("table2", func() {
			fmt.Printf("\nTable 2 — proxy quantity statistics at full population scale:\n")
			for j, st := range stats {
				fmt.Printf("  %s: pop %d avg %.2f std %.2f max %d (paper: %s)\n",
					st.Dataset, st.ClientPop, st.AvgRecords, st.StdRecords, st.MaxRecords, rows[j].paper)
			}
		})
	}
}

func BenchmarkFigure5QuantityDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gens := []struct {
			name string
			gen  data.Generator
		}{}
		ag, err := data.NewAdsGenerator(data.DefaultAdsConfig(300, 1))
		if err != nil {
			b.Fatal(err)
		}
		mg, err := data.NewMessagingGenerator(data.DefaultMessagingConfig(300, 1))
		if err != nil {
			b.Fatal(err)
		}
		sg, err := data.NewSearchGenerator(data.DefaultSearchConfig(300, 1))
		if err != nil {
			b.Fatal(err)
		}
		gens = append(gens,
			struct {
				name string
				gen  data.Generator
			}{"ads", ag},
			struct {
				name string
				gen  data.Generator
			}{"messaging", mg},
			struct {
				name string
				gen  data.Generator
			}{"search", sg})
		lines := make([]string, 0, len(gens))
		for _, g := range gens {
			qs := make([]float64, 300)
			for id := int64(0); id < 300; id++ {
				qs[id] = float64(len(g.gen.GenerateClient(id).Examples))
			}
			s := metrics.Summarize(qs)
			_, counts := metrics.Histogram(qs, 24)
			vals := make([]float64, len(counts))
			for k, c := range counts {
				vals[k] = float64(c)
			}
			lines = append(lines, fmt.Sprintf("  %-10s %s mean %.1f p99 %.0f",
				g.name, report.Sparkline(vals), s.Mean, s.P99))
		}
		once("fig5", func() {
			fmt.Printf("\nFigure 5 — client quantity distributions (domains differ by orders of magnitude):\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// ---------------------------------------------------- Table 5 and Figure 4

func BenchmarkTable5OnDevice(b *testing.B) {
	paper := map[model.Kind]string{
		model.KindA: "4.98s ±3.37, 0.057MB, 1.63%",
		model.KindB: "61.81s ±44.17, 0.76MB, 3.91%",
		model.KindC: "3.26s ±2.23, 0.85MB, 5.29%",
		model.KindD: "70.13s ±50.82, 10.79MB, 4.72%",
		model.KindE: "238.38s ±178.13, 7.52MB, 6.43%",
	}
	for i := 0; i < b.N; i++ {
		rows, err := device.Table5(device.BenchPool(), 5000, 1)
		if err != nil {
			b.Fatal(err)
		}
		once("table5", func() {
			fmt.Printf("\nTable 5 — on-device benchmarks, 5,000 records x 27 devices (measured | paper):\n")
			for _, r := range rows {
				fmt.Printf("  %s %-24s %7d params %6.3f MB  %7.2fs ±%.2f cpu %.2f%% | %s\n",
					r.Model, r.Description, r.Params, r.StorageMB, r.MeanTimeS, r.StdevTimeS, r.MeanCPU, paper[r.Model])
			}
		})
	}
}

func BenchmarkFigure4DeviceHeterogeneity(b *testing.B) {
	pool := device.BenchPool()
	for i := 0; i < b.N; i++ {
		timesA := make([]float64, len(pool))
		timesB := make([]float64, len(pool))
		for j, p := range pool {
			ra, err := device.Run(model.KindB, p, 5000, 1)
			if err != nil {
				b.Fatal(err)
			}
			rb, err := device.Run(model.KindE, p, 5000, 1)
			if err != nil {
				b.Fatal(err)
			}
			timesA[j], timesB[j] = ra.TrainSeconds, rb.TrainSeconds
		}
		once("fig4", func() {
			sa, sb := metrics.Summarize(timesA), metrics.Summarize(timesB)
			fmt.Printf("\nFigure 4 — two tasks across 27 devices (5,000 records):\n")
			fmt.Printf("  task A (model B): %s  range %.0f–%.0fs\n", report.Sparkline(timesA), sa.Min, sa.Max)
			fmt.Printf("  task B (model E): %s  range %.0f–%.0fs\n", report.Sparkline(timesB), sb.Min, sb.Max)
			fmt.Printf("  magnitude gap between tasks: %.1fx mean (paper: 'magnitudes difference')\n", sb.Mean/sa.Mean)
		})
	}
}

// ------------------------------------------------------------------ Table 3

func BenchmarkTable3FedBuffSpeedup(b *testing.B) {
	paper := map[core.Domain]string{
		core.Ads:       "1.2x, 48.8k tasks, 7.5 hrs",
		core.Messaging: "6x, 32.3k tasks, 6.8 days",
		core.Search:    "2x, 610k tasks, 25.9 days",
	}
	// The async advantage appears in the duration-dominated regime the
	// paper runs in (abundant arrivals, heavy-tailed task durations):
	// congested network, deep shards, dense sessions.
	congested := network.BandwidthModel{MedianMbps: 1.0, Sigma: 1.1, SlowFrac: 0.15, FloorMbps: 0.05}
	scale := core.Scale{
		Clients: 2500, TestRecords: 1500, TraceDays: 14, MaxRounds: 30, EvalEvery: 1,
		MaxShardExamples: 1200, SessionsPerDay: 24, Bandwidth: &congested,
	}
	stress := func(syncCfg, asyncCfg *fedsim.Config) {
		syncCfg.RoundDeadlineSec = 180
		syncCfg.LocalEpochs = 5
		asyncCfg.LocalEpochs = 5
		asyncCfg.MaxStaleness = 20
		asyncCfg.Concurrency = 64
	}
	for i := 0; i < b.N; i++ {
		lines := make([]string, 0, len(core.Domains))
		for _, d := range core.Domains {
			cmp, err := core.CompareModes(d, scale, 1, 0.97, stress)
			if err != nil {
				b.Fatal(err)
			}
			roundRatio := cmp.SyncReport.FinalVTime / cmp.AsyncReport.FinalVTime
			wastedSync := cmp.SyncReport.TotalStragglers + cmp.SyncReport.TotalInterrupted
			wastedAsync := cmp.AsyncReport.TotalStale + cmp.AsyncReport.TotalInterrupted
			lines = append(lines, fmt.Sprintf(
				"  %-10s time-to-target %.2fx, per-round wall %.2fx, wasted tasks %d vs %d, "+
					"%d tasks started, compute %s (paper: %s)",
				d, cmp.SpeedUp, roundRatio, wastedSync, wastedAsync,
				cmp.AsyncTasksStarted, report.Dur(cmp.AsyncComputeSec), paper[d]))
		}
		once("table3", func() {
			fmt.Printf("\nTable 3 — FedBuff vs FedAvg (speedups as sync/async ratios, >1 favors FedBuff):\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// ------------------------------------------------------------------ Figure 7

func BenchmarkFigure7BufferSize(b *testing.B) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale
	scale.MaxRounds = 15
	for i := 0; i < b.N; i++ {
		lines := []string{}
		for _, buf := range []int{2, 5, 10, 20, 40} {
			env, _, err := core.BuildEnvironment(spec, scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.AsyncConfig(spec, scale, 1)
			cfg.BufferSize = buf
			cfg.EvalEvery = 0
			rep, err := fedsim.Run(cfg, env)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("  buffer %3d: mean fill %s", buf, report.Dur(rep.MeanBufferFillSec())))
		}
		once("fig7", func() {
			fmt.Printf("\nFigure 7 — buffer size vs time to populate the buffer:\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// ------------------------------------------------------------------ Figure 8

func BenchmarkFigure8ConcurrencyStaleness(b *testing.B) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		b.Fatal(err)
	}
	// Stale/interrupted effects need task durations comparable to the
	// aggregation cadence: congested transfers stretch the tail, whale
	// clients (no shard cap) stretch compute, dense arrivals keep the
	// buffer turning over underneath long tasks.
	congested := network.BandwidthModel{MedianMbps: 0.3, Sigma: 1.2, SlowFrac: 0.2, FloorMbps: 0.05}
	scale := benchScale
	scale.MaxRounds = 40
	scale.SessionsPerDay = 48
	scale.Clients = 1600
	scale.MaxShardExamples = 0
	scale.Bandwidth = &congested
	for i := 0; i < b.N; i++ {
		lines := []string{}
		for _, conc := range []int{8, 32, 128} {
			for _, stale := range []int{1, 5, 20} {
				env, _, err := core.BuildEnvironment(spec, scale, 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.AsyncConfig(spec, scale, 1)
				cfg.Concurrency = conc
				cfg.MaxStaleness = stale
				cfg.BufferSize = 4
				cfg.EvalEvery = 0
				rep, err := fedsim.Run(cfg, env)
				if err != nil {
					b.Fatal(err)
				}
				lines = append(lines, fmt.Sprintf(
					"  concurrency %4d staleness %3d: started %5d ok %5d interrupted %4d stale %4d",
					conc, stale, rep.TotalStarted, rep.TotalSucceeded, rep.TotalInterrupted, rep.TotalStale))
			}
		}
		once("fig8", func() {
			fmt.Printf("\nFigure 8 — task outcomes vs concurrency and staleness limits:\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// ----------------------------------------------------------------- Figure 10

func BenchmarkFigure10LRSchedules(b *testing.B) {
	scale := benchScale
	scale.MaxRounds = 30
	schedules := []model.Schedule{
		model.ExpDecayLR{Base: 0.3, Rate: 0.9, DecaySteps: 20, Floor: 0.02},
		model.ExpDecayLR{Base: 1.2, Rate: 0.98, DecaySteps: 20, Floor: 0.02},
	}
	for i := 0; i < b.N; i++ {
		out, err := core.RunLRStudy(scale, schedules, 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		once("fig10", func() {
			fmt.Printf("\nFigure 10 — LR schedule stability (5 trials each):\n")
			for name, trials := range out {
				finals := make([]float64, len(trials))
				for j, tr := range trials {
					finals[j] = tr.Final
				}
				s := metrics.Summarize(finals)
				fmt.Printf("  %-34s final AUPR %.4f ±%.4f\n", name, s.Mean, s.Std)
			}
			fmt.Println("  (a well-decayed schedule shows lower across-trial variance)")
		})
	}
}

// ------------------------------------------------------------------ Table 4

func BenchmarkTable4CaseStudies(b *testing.B) {
	paper := map[core.Domain]string{
		core.Ads:       "4.2 days, -1.85%",
		core.Messaging: "18.9 hrs, -0.18%",
		core.Search:    "2.58 hrs, -1.64%",
	}
	for i := 0; i < b.N; i++ {
		lines := []string{}
		for _, d := range core.Domains {
			scale := benchScale
			scale.MaxRounds = core.BenchRounds(d)
			res, err := core.RunCaseStudy(d, scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf(
				"  %-10s %s: centralized %.4f, FL %.4f (%+.2f%%), time-to-tolerance %s (paper: %s)",
				d, res.Metric, res.CentralizedMetric, res.FLMetric, res.PerfDiffPct,
				report.Dur(res.TimeToToleranceSec), paper[d]))
		}
		once("table4", func() {
			fmt.Printf("\nTable 4 — FL vs centralized per domain:\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// --------------------------------------------------------------- §3.5 (TEE)

func BenchmarkTEEBandwidthForecast(b *testing.B) {
	// The paper's closed-form projection: 610k tasks over 48h of 0.76 MB
	// updates → 3.53 upd/s, 2.68 MB/s. Exercised through a simulated
	// report plus a real small-run report.
	for i := 0; i < b.N; i++ {
		rep := &fedsim.Report{TotalSucceeded: 610_000, FinalVTime: 48 * 3600}
		th, err := forecast.TEELoad(rep, 760_000)
		if err != nil {
			b.Fatal(err)
		}
		once("tee", func() {
			fmt.Printf("\n§3.5 TEE projection: %.2f updates/s, %.2f MB/s (paper: 3.53, 2.68)\n",
				th.UpdatesPerSec, th.BytesPerSec/1e6)
		})
	}
}
