package flint

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/model"
	"flint/internal/shard"
	"flint/internal/tensor"
)

// BenchmarkShardedRoundThroughput measures the coordination tier's
// aggregate ingest→commit throughput at 1, 2, and 4 shards, each shard
// serving its own 16-device cohort on the 189k-param model through the
// hierarchical zero-copy commit path (fused q8 reduce → raw64 partial →
// cross-shard fold at the leader).
//
// One op is one tier generation: every shard fills and reduces one
// 16-update round, the leader folds the partials, and the global version
// advances by one. Round fill is latency-bound — devices "train" for a
// think interval while the CPU idles — and the reduce/fold/publish work
// is CPU-bound, so sharding buys throughput by pipelining: shard A's
// commit overlaps shards B–D's fills. That is the same mechanism that
// scales a real tier (whose fills are network/device-bound), and it is
// honest on a single-core runner: updates/s must rise with the shard
// count because the fixed per-round fill latency is paid once per shard
// concurrently instead of once per round serially.
func BenchmarkShardedRoundThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedTier(b, shards)
		})
	}
}

func benchShardedTier(b *testing.B, shards int) {
	const (
		devicesPerShard = 16
		think           = 200 * time.Millisecond // device-side local training latency
	)
	leader, err := shard.NewLeader(shard.LeaderConfig{
		Shards: shards,
		Grace:  time.Hour, // membership is not what this bench measures
		Params: func(string) (tensor.Vector, error) {
			m, err := model.New(model.KindB, 1)
			if err != nil {
				return nil, err
			}
			return m.Params(), nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	refModel, err := model.New(model.KindB, 1)
	if err != nil {
		b.Fatal(err)
	}
	dim := refModel.NumParams()
	coords := make([]*coord.Coordinator, shards)
	for s := range coords {
		leader.Ping(s)
		c, err := coord.New(coord.Config{
			Mode:          coord.ModeSync,
			ModelKind:     model.KindB,
			Seed:          1,
			TargetUpdates: devicesPerShard,
			Quorum:        devicesPerShard,
			OverCommit:    1,
			RoundDeadline: time.Hour,
			QueueDepth:    64,
			KeepVersions:  4,
			Exchange:      leader,
			ShardID:       s,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		coords[s] = c
		for i := int64(1); i <= devicesPerShard; i++ {
			c.CheckIn(coord.DeviceInfo{
				ID: int64(s)*1000 + i, Model: "Pixel-6", Platform: "Android",
				WiFi: true, BatteryHigh: true, ModernOS: true,
				SessionSec: 3600, Weight: 10,
			})
		}
	}
	// Pre-encoded q8 update blobs (the live uplink default): the bench
	// measures the tier, not device-side encoding.
	rng := rand.New(rand.NewSource(21))
	blobs := make([][]byte, devicesPerShard)
	for d := range blobs {
		v := tensor.NewVector(dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 0.01
		}
		if blobs[d], err = codec.Encode(v, codec.Q8); err != nil {
			b.Fatal(err)
		}
	}

	// device runs one cohort member's round: take the task, train for
	// the think interval, submit the q8 update in wire form (a fresh
	// pooled payload per attempt — SubmitUpdate takes ownership on
	// every outcome).
	device := func(c *coord.Coordinator, id int64, blob []byte) {
		var task coord.Task
		for {
			t, err := c.RequestTask(id)
			if err == nil {
				task = t
				break
			}
			if !errors.Is(err, coord.ErrNoTask) {
				b.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(think)
		for {
			p, err := codec.DecodePayloadFrom(bytes.NewReader(blob), dim)
			if err != nil {
				b.Error(err)
				return
			}
			err = c.SubmitUpdate(coord.Submission{
				DeviceID: id, RoundID: task.RoundID,
				BaseVersion: task.BaseVersion, Weight: 10, Payload: p,
			})
			if err == nil {
				return
			}
			if !errors.Is(err, coord.ErrBusy) {
				b.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := leader.Version("") + 1
		var wg sync.WaitGroup
		for s, c := range coords {
			for d := int64(1); d <= devicesPerShard; d++ {
				wg.Add(1)
				go func(c *coord.Coordinator, id int64, blob []byte) {
					defer wg.Done()
					device(c, id, blob)
				}(c, int64(s)*1000+d, blobs[d-1])
			}
		}
		wg.Wait()
		for leader.Version("") < want {
			time.Sleep(time.Millisecond)
		}
	}
	b.StopTimer()
	updates := float64(b.N) * devicesPerShard * float64(shards)
	b.ReportMetric(updates/b.Elapsed().Seconds(), "updates/s")
}
