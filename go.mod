module flint

go 1.24
