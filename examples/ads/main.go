// Command ads reproduces the §4.1 advertising case study end to end:
// participation criteria → availability trace (Table 1), proxy dataset with
// natural partitioning (Table 2 shape), mobile-ready model selection via
// on-device benchmarks (Table 5), FL-vs-centralized training (Table 4 row),
// and the §4.1 security notes (SecAgg throughput, hub-and-spoke poisoning).
package main

import (
	"fmt"
	"log"

	"flint"
	"flint/internal/report"
)

func main() {
	seed := int64(7)
	scale := flint.Scale{
		Clients: 250, TestRecords: 2500, TraceDays: 14,
		MaxRounds: 150, EvalEvery: 15, MaxShardExamples: 300,
	}

	// Step 1 — participation criteria and availability (§4.1, Table 1).
	fmt.Println("== Step 1: client participation and availability ==")
	logCfg := flint.DefaultSessionLog(scale.Clients, seed)
	sessions, err := flint.GenerateSessionLog(logCfg)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := flint.ComputeTable1(sessions)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("Table 1 — device availability after criteria", "criterion", "measured", "paper")
	tbl.AddRow("A: connected to WiFi", report.Pct(t1.WiFi), "70%")
	tbl.AddRow("B: battery >= 80%", report.Pct(t1.Battery), "34%")
	tbl.AddRow("C: OS release >= Sept 2019", report.Pct(t1.ModernOS), "93%")
	tbl.AddRow("A ∩ B ∩ C", report.Pct(t1.Intersect), "22%")
	fmt.Println(tbl.String())

	// Step 2 — proxy dataset (§4.1, Table 2 Dataset A shape).
	fmt.Println("== Step 2: proxy dataset ==")
	spec, err := flint.SpecFor(flint.Ads)
	if err != nil {
		log.Fatal(err)
	}
	env, gen, err := flint.BuildEnvironment(spec, scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	shards := make([]flint.ClientShard, 0, scale.Clients)
	for id := int64(0); id < int64(scale.Clients); id++ {
		shards = append(shards, gen.GenerateClient(id))
	}
	stats := flint.ComputeProxyStats("datasetA", shards, 90)
	fmt.Printf("  %s\n  (paper: pop 700k, max 39,731, avg 99, std 667, label 0.28)\n\n", stats)

	// Step 3 — mobile-ready model selection (§4.1, Table 5).
	fmt.Println("== Step 3: model selection (SDK size limit < 1 MB) ==")
	rows, err := flint.RunDeviceBenchmarks(flint.BenchDevicePool(), 1000, seed)
	if err != nil {
		log.Fatal(err)
	}
	sel := report.NewTable("Candidates", "model", "params", "storage", "network", "fits SDK (<1MB)")
	for _, r := range rows {
		if r.Model != flint.ModelA && r.Model != flint.ModelB && r.Model != flint.ModelC {
			continue
		}
		fits := "no"
		if r.StorageMB < 1.0 {
			fits = "yes"
		}
		sel.AddRow(string(r.Model), fmt.Sprintf("%d", r.Params),
			fmt.Sprintf("%.2f MB", r.StorageMB), fmt.Sprintf("%.2f MB", r.NetworkMB), fits)
	}
	fmt.Println(sel.String())
	fmt.Println("  Selected: model B (satisfies the 0.76 MB size requirement, §4.1)")
	fmt.Println()

	// Step 4 — systems and model performance (Table 4 row).
	fmt.Println("== Step 4: FL training vs centralized ==")
	res, err := flint.RunCaseStudy(flint.Ads, scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  centralized AUPR:   %.4f\n", res.CentralizedMetric)
	fmt.Printf("  federated AUPR:     %.4f\n", res.FLMetric)
	fmt.Printf("  performance diff:   %+.2f%%  (paper: -1.85%%)\n", res.PerfDiffPct)
	fmt.Printf("  projected training: %s     (paper: 4.2 days at production scale)\n",
		report.Dur(res.TrainingVTimeSec))
	fmt.Printf("  tasks started %d, client compute %s\n\n",
		res.Report.TotalStarted, report.Dur(res.Report.TotalComputeSec))

	// Step 5 — security and privacy (§4.1).
	fmt.Println("== Step 5: security & privacy ==")
	tee, err := flint.ForecastTEELoad(res.Report, env.UpdateBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  TEE ingest: %.2f updates/s, %.3f MB/s (paper projects <3 MB/s)\n",
		tee.UpdatesPerSec, tee.BytesPerSec/1e6)
	dp := flint.DPConfig{ClipNorm: 1, NoiseMultiplier: 0.7}
	eps, err := dp.EpsilonApprox(len(res.Report.Rounds), 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FL-DP at sigma=0.7 over %d rounds: epsilon ≈ %.1f (delta=1e-6)\n",
		len(res.Report.Rounds), eps)
	fmt.Println("  hub-and-spoke risk: see examples/messaging for the poisoning evaluation")
}
