// Command search reproduces the §4.3 search case study: a low-latency
// ranking model (Table 5's model A) trained federatedly on per-client query
// groups, evaluated with NDCG, plus the latency argument for on-device
// inference and the superuser quantity-skew observation.
package main

import (
	"fmt"
	"log"

	"flint"
	"flint/internal/report"
)

func main() {
	seed := int64(33)
	scale := flint.Scale{
		Clients: 400, TestRecords: 2400, TraceDays: 14,
		MaxRounds: 150, EvalEvery: 15,
	}

	// Step 1 — latency budget: on-device ranking removes the network round
	// trip from the sub-100ms budget (§4.3).
	fmt.Println("== Step 1: latency budget ==")
	m, err := flint.NewModel(flint.ModelA, seed)
	if err != nil {
		log.Fatal(err)
	}
	cost := m.Cost()
	pool := flint.BenchDevicePool()
	infMs := cost.InferFLOPs / (pool[0].MatmulGFLOPS * 1e9) * 1000
	fmt.Printf("  model A on-device inference ≈ %.3f ms/candidate on a flagship device\n", infMs)
	fmt.Printf("  vs a centralized round trip of 30-100 ms — locally cached documents\n")
	fmt.Printf("  can be retrieved and ranked with zero network communication.\n\n")

	// Step 2 — the quantity skew of search data (Table 2, Dataset C).
	fmt.Println("== Step 2: dataset shape ==")
	spec, err := flint.SpecFor(flint.Search)
	if err != nil {
		log.Fatal(err)
	}
	_, gen, err := flint.BuildEnvironment(spec, scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	shards := make([]flint.ClientShard, 0, scale.Clients)
	for id := int64(0); id < int64(scale.Clients); id++ {
		shards = append(shards, gen.GenerateClient(id))
	}
	stats := flint.ComputeProxyStats("datasetC", shards, 61)
	fmt.Printf("  %s\n", stats)
	fmt.Println("  (paper: 16.4M clients, avg 1.53 records — most clients hold one query,")
	fmt.Println("   while \"superusers\" dominate the record mass)")
	fmt.Println()

	// Step 3 — FL training vs centralized, NDCG (Table 4 row).
	fmt.Println("== Step 3: federated ranking quality ==")
	res, err := flint.RunCaseStudy(flint.Search, scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  centralized NDCG: %.4f\n", res.CentralizedMetric)
	fmt.Printf("  federated NDCG:   %.4f\n", res.FLMetric)
	fmt.Printf("  performance diff: %+.2f%%  (paper: -1.64%%)\n", res.PerfDiffPct)
	fmt.Printf("  projected training: %s (paper: 2.58 hrs at production scale)\n",
		report.Dur(res.TrainingVTimeSec))
	_, _, vals := res.Report.MetricSeries()
	fmt.Printf("  NDCG trajectory: %s\n", report.Sparkline(vals))
	fmt.Println()
	fmt.Println("  FL training additionally removes the store/ETL/retrain pipeline for")
	fmt.Println("  regular model refreshes (§4.3).")
}
