// Command messaging reproduces the §4.2 messaging case study: synthetic
// (never-decrypted) proxy messages, embedding-size budgeting for on-device
// deployment, FL-vs-centralized comparison, and the security evaluation —
// data poisoning with and without robust aggregation.
package main

import (
	"fmt"
	"log"

	"flint"
	"flint/internal/aggregator"
	"flint/internal/data"
	"flint/internal/featurestore"
	"flint/internal/fedsim"
	"flint/internal/report"
)

func main() {
	seed := int64(21)
	scale := flint.Scale{
		Clients: 200, TestRecords: 2000, TraceDays: 14,
		MaxRounds: 600, EvalEvery: 50, MaxShardExamples: 250,
		SessionsPerDay: 6,
	}

	// Step 1 — embedding size budgeting (§4.2): a 500k-word, 300-dim
	// embedding is a ~600 MB asset; reducing to 50k x 50 fits the 10 MB
	// first-party constraint.
	fmt.Println("== Step 1: text embedding sizing ==")
	before := 500_000 * 300 * 4
	after := 50_000 * 50 * 4
	fmt.Printf("  original embedding: %s — prohibits on-device deployment\n", report.MB(before))
	fmt.Printf("  reduced embedding:  %s — %.0fx smaller, fits the 10 MB constraint\n",
		report.MB(after), float64(before)/float64(after))
	words := make([]string, 5000)
	for i := range words {
		words[i] = fmt.Sprintf("token_%d", i)
	}
	vocab := data.NewVocabulary(words)
	planning, err := featurestore.PlanVocab(
		[]featurestore.VocabAsset{featurestore.BuildAsset("message_tokens", vocab)}, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  vocab file alternative: %s asset vs feature hashing at %.1f%% collisions\n\n",
		report.MB(planning.VocabBytes), 100*planning.CollisionRate)

	// Step 2 — FL vs centralized on synthetic messages (Table 4 row).
	fmt.Println("== Step 2: FL training on synthetic proxy messages ==")
	res, err := flint.RunCaseStudy(flint.Messaging, scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  centralized AUPR: %.4f\n", res.CentralizedMetric)
	fmt.Printf("  federated AUPR:   %.4f\n", res.FLMetric)
	fmt.Printf("  performance diff: %+.2f%%  (paper: -0.18%%)\n", res.PerfDiffPct)
	fmt.Printf("  projected training: %s (paper: 18.9 hrs at production scale)\n\n",
		report.Dur(res.TrainingVTimeSec))

	// Step 3 — security: coordinated data poisoning (§4.2) evaluated with
	// and without a robust-aggregation defense.
	fmt.Println("== Step 3: poisoning evaluation ==")
	spec, err := flint.SpecFor(flint.Messaging)
	if err != nil {
		log.Fatal(err)
	}
	runWith := func(adv *aggregator.Adversary, trim float64) float64 {
		env, _, err := flint.BuildEnvironment(spec, scale, seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg := flint.AsyncConfig(spec, scale, seed)
		cfg.MaxRounds = 20
		cfg.Adversary = adv
		cfg.RobustTrimFrac = trim
		rep, err := fedsim.Run(cfg, env)
		if err != nil {
			log.Fatal(err)
		}
		best := 0.0
		for _, r := range rep.Rounds {
			if r.Evaluated() && r.Metric > best {
				best = r.Metric
			}
		}
		return best
	}
	attack := &aggregator.Adversary{Attack: aggregator.SignFlip{Scale: 4}, Fraction: 0.25, Seed: 5}
	clean := runWith(nil, 0)
	poisoned := runWith(attack, 0)
	defended := runWith(attack, 0.25)
	tbl := report.NewTable("Poisoning (25% compromised, sign-flip x4)", "condition", "best AUPR")
	tbl.AddRow("clean", fmt.Sprintf("%.4f", clean))
	tbl.AddRow("poisoned, FedBuff", fmt.Sprintf("%.4f", poisoned))
	tbl.AddRow("poisoned + trimmed-mean", fmt.Sprintf("%.4f", defended))
	fmt.Println(tbl.String())
	fmt.Println("  mitigation per §4.2: robust client-selection criteria (reputation, account age)")
	fmt.Println("  plus robust aggregation recover most of the clean-model quality.")
}
