// Command capacity demonstrates §3.5's resource forecasting and the Fig 9
// decision workflow: it runs the ads evaluation through every gate —
// availability, proxy data, model footprint, simulation quality, resource
// budget, privacy — and prints the go/no-go record.
package main

import (
	"fmt"
	"log"

	"flint"
	"flint/internal/report"
)

func main() {
	seed := int64(55)
	scale := flint.Scale{
		Clients: 200, TestRecords: 1800, TraceDays: 14,
		MaxRounds: 160, EvalEvery: 10, MaxShardExamples: 250,
		SessionsPerDay: 6, // an engaged app population
	}
	ctx := flint.NewWorkflowContext()

	wf := &flint.DecisionWorkflow{
		Name: "ads-fl-integration",
		Steps: []flint.WorkflowStep{
			{
				Name: "client-availability",
				Run: func(c *flint.WorkflowContext) (string, bool, error) {
					sessions, err := flint.GenerateSessionLog(flint.DefaultSessionLog(scale.Clients, seed))
					if err != nil {
						return "", false, err
					}
					t1, err := flint.ComputeTable1(sessions)
					if err != nil {
						return "", false, err
					}
					eligible := flint.ApplyCriteria(sessions, flint.Criteria{
						RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true,
					})
					trace := flint.BuildTrace(eligible)
					series, err := flint.ComputeAvailabilitySeries(trace, 3600)
					if err != nil {
						return "", false, err
					}
					c.Put("series", series)
					detail := fmt.Sprintf("eligible %.0f%%, peak/trough %.1fx",
						100*t1.Intersect, series.PeakTroughRatio())
					// Gate: at least 10% of sessions must be FL-eligible.
					return detail, t1.Intersect >= 0.10, nil
				},
			},
			{
				Name: "proxy-dataset",
				Run: func(c *flint.WorkflowContext) (string, bool, error) {
					spec, err := flint.SpecFor(flint.Ads)
					if err != nil {
						return "", false, err
					}
					_, gen, err := flint.BuildEnvironment(spec, scale, seed)
					if err != nil {
						return "", false, err
					}
					shards := make([]flint.ClientShard, 0, scale.Clients)
					for id := int64(0); id < int64(scale.Clients); id++ {
						shards = append(shards, gen.GenerateClient(id))
					}
					stats := flint.ComputeProxyStats("ads", shards, 90)
					detail := fmt.Sprintf("pop %d, avg %.0f rec/client, label %.2f",
						stats.ClientPop, stats.AvgRecords, stats.LabelRatio)
					// Gate: enough clients and a non-degenerate label ratio.
					return detail, stats.ClientPop >= 100 && stats.LabelRatio > 0.01, nil
				},
			},
			{
				Name: "model-footprint",
				Run: func(c *flint.WorkflowContext) (string, bool, error) {
					rows, err := flint.RunDeviceBenchmarks(flint.BenchDevicePool(), 500, seed)
					if err != nil {
						return "", false, err
					}
					for _, r := range rows {
						if r.Model == flint.ModelB {
							detail := fmt.Sprintf("model B: %.2f MB storage, %.2f MB/round, %.1fs/500rec mean",
								r.StorageMB, r.NetworkMB, r.MeanTimeS)
							// Gate: the §4.1 SDK limit (<1 MB).
							return detail, r.StorageMB < 1.0, nil
						}
					}
					return "model B missing", false, nil
				},
			},
			{
				Name: "training-quality",
				Run: func(c *flint.WorkflowContext) (string, bool, error) {
					res, err := flint.RunCaseStudy(flint.Ads, scale, seed)
					if err != nil {
						return "", false, err
					}
					c.Put("report", res.Report)
					c.Put("result", res)
					detail := fmt.Sprintf("FL %+.2f%% vs centralized, time to tolerance %s",
						res.PerfDiffPct, report.Dur(res.TimeToToleranceSec))
					// Gates from §4.1: up to 5% accuracy degradation is
					// tolerable in ads; SLA is a weekly retrain.
					return detail, res.PerfDiffPct > -5 && res.ReachedTolerance &&
						res.TimeToToleranceSec < 7*86400, nil
				},
			},
			{
				Name: "resource-budget",
				Run: func(c *flint.WorkflowContext) (string, bool, error) {
					repAny, _ := c.Get("report")
					rep := repAny.(*flint.SimReport)
					budget, err := flint.ForecastDeviceBudget(rep)
					if err != nil {
						return "", false, err
					}
					tee, err := flint.ForecastTEELoad(rep, 780<<10)
					if err != nil {
						return "", false, err
					}
					seriesAny, _ := c.Get("series")
					infra, err := flint.PlanInfrastructure(rep, seriesAny.(flint.AvailabilitySeries), 10)
					if err != nil {
						return "", false, err
					}
					detail := fmt.Sprintf("compute %s, wasted %.0f%%, TEE %.3f MB/s, %d workers at peak",
						report.Dur(budget.ComputeSec), 100*budget.WastedFraction,
						tee.BytesPerSec/1e6, infra.Workers)
					// Gates: TEE ingest under 3 MB/s (§4.1), wasted work under half.
					return detail, tee.BytesPerSec/1e6 < 3 && budget.WastedFraction < 0.5, nil
				},
			},
			{
				Name: "privacy-review",
				Run: func(c *flint.WorkflowContext) (string, bool, error) {
					dp := flint.DPConfig{ClipNorm: 1, NoiseMultiplier: 1.4}
					eps, err := dp.EpsilonApprox(scale.MaxRounds, 1e-6)
					if err != nil {
						return "", false, err
					}
					detail := fmt.Sprintf("FL-DP epsilon ≈ %.1f over %d rounds at sigma=1.4; SecAgg TEE-compatible (async)", eps, scale.MaxRounds)
					return detail, eps < 50, nil
				},
			},
		},
	}

	out, err := wf.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.String())
}
