// Command quickstart runs the smallest end-to-end FLINT flow: build the ads
// environment (proxy data, availability trace, device benchmarks, network
// model), run a short FedBuff simulation, and print model + system metrics
// over rounds and virtual time.
package main

import (
	"fmt"
	"log"

	"flint"
	"flint/internal/report"
)

func main() {
	scale := flint.Scale{
		Clients: 120, TestRecords: 1200, TraceDays: 7,
		MaxRounds: 20, EvalEvery: 4, MaxShardExamples: 200,
	}
	spec, err := flint.SpecFor(flint.Ads)
	if err != nil {
		log.Fatal(err)
	}
	env, _, err := flint.BuildEnvironment(spec, scale, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flint.AsyncConfig(spec, scale, 42)
	rep, err := flint.RunSimulation(cfg, env)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FLINT quickstart — ads domain, FedBuff async training")
	fmt.Println()
	tbl := report.NewTable("Model & system metrics per round",
		"round", "vtime", "AUPR", "buffer fill", "started", "ok", "compute")
	for _, r := range rep.Rounds {
		metric := "-"
		if r.Evaluated() {
			metric = fmt.Sprintf("%.4f", r.Metric)
		}
		tbl.AddRow(
			fmt.Sprintf("%d", r.Round),
			report.Dur(r.VTime),
			metric,
			report.Dur(r.BufferFillSec),
			fmt.Sprintf("%d", r.Started),
			fmt.Sprintf("%d", r.Succeeded),
			report.Dur(r.ComputeSec),
		)
	}
	fmt.Println(tbl.String())
	_, _, vals := rep.MetricSeries()
	fmt.Printf("AUPR trajectory: %s\n", report.Sparkline(vals))
	fmt.Printf("Summary: %s\n", rep.String())

	budget, err := flint.ForecastDeviceBudget(rep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Device budget: %.0f s client compute, %.1f Wh, %.1f%% wasted tasks\n",
		budget.ComputeSec, budget.EnergyWh, 100*budget.WastedFraction)
}
