//go:build race

package flint_test

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-accounting assertions skip themselves under it.
const raceEnabled = true
