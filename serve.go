package flint

import (
	"net/http"

	"flint/internal/coord"
)

// Live serving (the production half of the platform): a wall-clock
// federated coordination server plus a fleet load generator. See
// internal/coord and DESIGN.md §6.
type (
	// Coordinator is the live federated training server.
	Coordinator = coord.Coordinator
	// CoordConfig parameterizes a Coordinator.
	CoordConfig = coord.Config
	// CoordMode selects sync FedAvg or async FedBuff serving.
	CoordMode = coord.Mode
	// CoordStatus is the coordinator's status snapshot.
	CoordStatus = coord.StatusReport
	// FleetConfig drives the synthetic device fleet.
	FleetConfig = coord.FleetConfig
	// FleetReport is the load generator's result.
	FleetReport = coord.FleetReport
)

// Serving modes.
const (
	CoordSync  = coord.ModeSync
	CoordAsync = coord.ModeAsync
)

// DefaultCoordConfig returns a small sync-mode serving configuration.
func DefaultCoordConfig() CoordConfig { return coord.DefaultConfig() }

// NewCoordinator builds and starts a coordination server; Close it when
// done.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) { return coord.New(cfg) }

// CoordHandler wraps a coordinator in its /v1 JSON API.
func CoordHandler(c *Coordinator) http.Handler { return coord.NewServer(c) }

// RunFleet drives a simulated device fleet against a running server.
func RunFleet(cfg FleetConfig) (*FleetReport, error) { return coord.RunFleet(cfg) }
