package flint

import (
	"io"
	"net/http"

	"flint/internal/aggregator"
	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/sched"
	"flint/internal/shard"
	"flint/internal/tenant"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// Live serving (the production half of the platform): a wall-clock
// federated coordination server plus a fleet load generator. See
// internal/coord and DESIGN.md §6.
type (
	// Coordinator is the live federated training server.
	Coordinator = coord.Coordinator
	// CoordConfig parameterizes a Coordinator.
	CoordConfig = coord.Config
	// CoordMode selects sync FedAvg or async FedBuff serving.
	CoordMode = coord.Mode
	// CoordStatus is the coordinator's status snapshot.
	CoordStatus = coord.StatusReport
	// CoordAggregationConfig selects the commit reducer and the
	// pre-reduce norm screen (CoordConfig.Aggregation).
	CoordAggregationConfig = coord.AggregationConfig
	// CoordDPConfig enables the commit pipeline's central-DP stage
	// (CoordConfig.DP): clip the aggregate delta, add seeded Gaussian
	// noise, account ε per round.
	CoordDPConfig = coord.DPConfig
	// CoordPrivacyReport is the DP accountant's /v1/status view.
	CoordPrivacyReport = coord.PrivacyReport
	// FleetConfig drives the synthetic device fleet.
	FleetConfig = coord.FleetConfig
	// FleetReport is the load generator's result.
	FleetReport = coord.FleetReport
)

// Serving modes.
const (
	CoordSync  = coord.ModeSync
	CoordAsync = coord.ModeAsync
)

// DefaultCoordConfig returns a small sync-mode serving configuration.
func DefaultCoordConfig() CoordConfig { return coord.DefaultConfig() }

// NewCoordinator builds and starts a coordination server; Close it when
// done.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) { return coord.New(cfg) }

// CoordHandler wraps a coordinator in its /v1 JSON API.
func CoordHandler(c *Coordinator) http.Handler { return coord.NewServer(c) }

// RunFleet drives a simulated device fleet against a running server.
func RunFleet(cfg FleetConfig) (*FleetReport, error) { return coord.RunFleet(cfg) }

// Multi-tenant job plane (internal/tenant): M independent FL jobs
// hosted inside one server process behind /v1/jobs/<job>/... routing,
// with per-job device quotas and bearer-token auth. See DESIGN.md §12.
type (
	// JobSpec declares one FL job of a multi-tenant server; zero fields
	// inherit the server's base CoordConfig.
	JobSpec = tenant.JobSpec
	// JobCohortSpec overlays one transport cohort's schemes and delta
	// window in a job spec.
	JobCohortSpec = tenant.CohortSpec
	// JobRegistry hosts the jobs of a multi-tenant server.
	JobRegistry = tenant.Registry
	// Job is one registered tenant (spec + running coordinator).
	Job = tenant.Job
	// TenantStatus is the multi-tenant /v1/status payload: the default
	// job's report inlined plus per-job and fleet rollup sections.
	TenantStatus = tenant.StatusReport
	// TenantJobStatus is one job's rollup row.
	TenantJobStatus = tenant.JobStatus
)

// NewJobRegistry creates an empty job registry over a base serving
// configuration; Close it when done.
func NewJobRegistry(base CoordConfig) *JobRegistry { return tenant.NewRegistry(base) }

// TenantHandler wraps a job registry in the multi-tenant /v1 router
// (job routing, default-job alias, status rollup). admin enables
// POST /v1/jobs job registration.
func TenantHandler(reg *JobRegistry, admin bool) http.Handler { return tenant.NewServer(reg, admin) }

// LoadJobSpecs parses a jobs file (a JSON array of specs, or an object
// with a "jobs" array).
func LoadJobSpecs(data []byte) ([]JobSpec, error) { return tenant.LoadSpecs(data) }

// Binary tensor wire format (internal/codec): the payload encoding shared
// by model checkpoints, the versioned store, and the serving protocol's
// /v1/task and /v1/update bodies.
type (
	// TensorScheme selects a payload encoding (raw64, f32, q8, topk).
	TensorScheme = codec.Scheme
)

// The parameterless tensor schemes; TensorTopK builds the sparse one.
var (
	TensorRawF64 = codec.RawF64
	TensorF32    = codec.F32
	TensorQ8     = codec.Q8
)

// TensorContentType is the Content-Type/Accept value that negotiates
// binary tensor bodies on the /v1 serving API.
const TensorContentType = coord.ContentTypeTensor

// TensorTopK returns a sparse top-k scheme keeping k entries (0 = dim/32).
func TensorTopK(k int) TensorScheme { return codec.TopK(k) }

// EncodeTensorDelta serializes diff — a difference against a base vector
// the receiver already holds — as a delta frame under the scheme.
func EncodeTensorDelta(diff []float64, s TensorScheme) ([]byte, error) {
	return codec.EncodeDelta(tensor.Vector(diff), s)
}

// ApplyTensorDelta decodes a delta frame and returns base + diff as a
// fresh slice, plus the scheme the difference was encoded with.
func ApplyTensorDelta(base []float64, blob []byte) ([]float64, TensorScheme, error) {
	v, s, err := codec.ApplyDelta(tensor.Vector(base), blob)
	return v, s, err
}

// IsTensorDelta reports whether a codec blob is a delta frame.
func IsTensorDelta(blob []byte) bool { return codec.IsDelta(blob) }

// Transport negotiation (internal/transport): per-cohort wire-scheme
// policies, selected per device from its advertised platform,
// connectivity, and codec capability list. See DESIGN.md §8.
type (
	// TransportConfig defines the per-cohort policies and the
	// delta-broadcast window of a coordinator.
	TransportConfig = transport.Config
	// TransportPolicy is one cohort's scheme assignment (task broadcast,
	// update uplink, delta broadcast).
	TransportPolicy = transport.Policy
	// TransportDevice is the device state negotiation sees.
	TransportDevice = transport.Device
	// TransportDecision is a negotiated transport assignment.
	TransportDecision = transport.Decision
)

// Transport cohort names.
const (
	TransportCohortDefault = transport.CohortDefault
	TransportCohortLowBW   = transport.CohortLowBW
)

// Scheduling plane (internal/sched): measured-bandwidth cohorts,
// deadline-gated assignment, and straggler-tail over-commit, derived
// from per-device telemetry the serving path observes. See DESIGN.md
// §10.
type (
	// SchedConfig parameterizes a coordinator's scheduling plane
	// (CoordConfig.Sched).
	SchedConfig = sched.Config
	// SchedReport is the scheduler's fleet view in /v1/status.
	SchedReport = sched.Report
	// SchedTelemetry is one device's measured serving history (EWMA
	// link throughput and reported task duration).
	SchedTelemetry = sched.Telemetry
	// SchedCohortStats is one cohort's device count and
	// measured-bandwidth histogram.
	SchedCohortStats = sched.CohortStats
)

// SchedBucketLabels names the measured-bandwidth histogram buckets of a
// SchedCohortStats, aligned with its BandwidthHist slice.
func SchedBucketLabels() []string { return sched.BucketLabels() }

// ParseTensorScheme converts a CLI/wire string ("raw64", "f32", "q8",
// "topk[:k]") into a scheme.
func ParseTensorScheme(s string) (TensorScheme, error) { return codec.ParseScheme(s) }

// EncodeTensor serializes a vector under the scheme into a framed,
// checksummed codec blob.
func EncodeTensor(v []float64, s TensorScheme) ([]byte, error) {
	return codec.Encode(tensor.Vector(v), s)
}

// DecodeTensor parses a codec blob back into a dense vector, reporting
// the scheme it was encoded with.
func DecodeTensor(b []byte) ([]float64, TensorScheme, error) {
	v, s, err := codec.Decode(b)
	return v, s, err
}

// DecodeTensorFrom reads exactly one framed codec blob from r and decodes
// it, streaming: the 16-byte header is validated (including against
// wantDim, when > 0) before the payload is buffered — into a pooled
// scratch buffer of exactly the payload size — so a receiver never holds
// more than one in-flight body copy. Bytes after the frame are left
// unread in r.
func DecodeTensorFrom(r io.Reader, wantDim int) ([]float64, TensorScheme, error) {
	v, s, err := codec.DecodeFrom(r, wantDim)
	return v, s, err
}

// TensorPayload is a validated view over one codec blob that defers
// decoding: the commit pipeline aggregates straight out of the wire bytes
// through fused per-scheme kernels instead of materializing a dense
// vector per update. Obtain one with DecodeTensorPayloadFrom (streaming,
// pooled backing buffer — Release it when done) or ParseTensorPayload
// (zero-copy view over a blob already in memory). See DESIGN.md §13.
type TensorPayload = codec.Payload

// DecodeTensorPayloadFrom reads exactly one framed codec blob from r —
// same framing, validation, and single-copy buffering as
// DecodeTensorFrom — but returns the payload in wire form instead of
// decoding it. The payload retains its pooled buffer: call Release when
// done (handing it to Coordinator.SubmitUpdate transfers that
// obligation).
func DecodeTensorPayloadFrom(r io.Reader, wantDim int) (*TensorPayload, error) {
	return codec.DecodePayloadFrom(r, wantDim)
}

// ParseTensorPayload validates blob (header, checksum, structure) and
// returns a zero-copy payload view over it; blob must stay immutable for
// the payload's lifetime. Release is a no-op for parsed payloads.
func ParseTensorPayload(blob []byte) (*TensorPayload, error) {
	return codec.ParsePayload(blob)
}

// Server-side aggregation strategies (internal/aggregator): the kernels
// the coordinator's commit pipeline folds device updates with.
type (
	// AggregatorStrategy folds a batch of updates into the global
	// parameter vector.
	AggregatorStrategy = aggregator.Strategy
	// AggregatorUpdate is one client's contribution to a round.
	AggregatorUpdate = aggregator.Update
	// ParallelAggregator shards a coordinate-separable strategy (FedAvg,
	// FedBuff, the robust column reducers) across cores, bit-for-bit
	// identical to the sequential fold; other strategies pass through
	// unchanged.
	ParallelAggregator = aggregator.Parallel
	// AggregatorNormScreen is the pre-reduce norm-outlier rejection
	// layer of the commit pipeline.
	AggregatorNormScreen = aggregator.NormScreen
)

// FedAvgStrategy returns synchronous weighted federated averaging.
func FedAvgStrategy() AggregatorStrategy { return aggregator.FedAvg{} }

// FedBuffStrategy returns buffered asynchronous aggregation with
// polynomial staleness discounting.
func FedBuffStrategy(serverLR, alpha float64) AggregatorStrategy {
	return aggregator.FedBuff{ServerLR: serverLR, Alpha: alpha}
}

// TrimmedMeanStrategy returns the Byzantine-robust coordinate-wise
// trimmed mean (trimFrac trimmed from each side per coordinate).
func TrimmedMeanStrategy(trimFrac float64) AggregatorStrategy {
	return aggregator.TrimmedMean{TrimFrac: trimFrac}
}

// CoordinateMedianStrategy returns the Byzantine-robust coordinate-wise
// median.
func CoordinateMedianStrategy() AggregatorStrategy { return aggregator.CoordinateMedian{} }

// Sharded coordination tier (internal/shard): N coordinator replicas
// each owning a consistent-hash slice of the device-id space behind a
// routing gateway, with hierarchical zero-copy commits — shards reduce
// their cohorts to wire-form partials and the tier leader folds them
// across shards. See DESIGN.md §14.
type (
	// ShardRing is the consistent-hash device→shard map.
	ShardRing = shard.Ring
	// ShardLeader folds shard partials into the tier's global model and
	// enforces halt-until-healthy membership.
	ShardLeader = shard.Leader
	// ShardLeaderConfig parameterizes the tier leader.
	ShardLeaderConfig = shard.LeaderConfig
	// ShardGateway routes the /v1 device API by device id and hosts the
	// leader's /shard/v1 exchange.
	ShardGateway = shard.Gateway
	// ShardGatewayConfig parameterizes the gateway.
	ShardGatewayConfig = shard.GatewayConfig
	// ShardHTTPExchange is a replica's client on the tier exchange.
	ShardHTTPExchange = shard.HTTPExchange
	// ShardHeartbeat is a replica's background membership pump.
	ShardHeartbeat = shard.Heartbeat
	// TierStatus is the leader's membership/exchange snapshot.
	TierStatus = shard.TierStatus
	// TierRollup is the gateway's /v1/status payload.
	TierRollup = shard.Rollup
	// TierPartial is one shard's reduced round contribution on the
	// exchange (a wire-form codec blob plus fold metadata).
	TierPartial = coord.PartialCommit
	// TierInstall is the leader's response: the current global version,
	// with the full raw64 parameter blob when the shard is behind.
	TierInstall = coord.GlobalInstall
	// TierExchange ships partials to the tier leader; coordinators run
	// hierarchical commits when CoordConfig.Exchange carries one.
	TierExchange = coord.PartialExchange
)

// ErrTierHalted is returned by a tier exchange while shard membership
// is unhealthy (paper §3.4 halt-until-healthy, run horizontally).
var ErrTierHalted = coord.ErrTierHalted

// NewShardRing builds a consistent-hash ring over `shards` shards with
// `replicas` vnodes each (replicas <= 0 selects the default 64).
func NewShardRing(shards, replicas int) (*ShardRing, error) { return shard.NewRing(shards, replicas) }

// NewShardLeader builds a tier round leader.
func NewShardLeader(cfg ShardLeaderConfig) (*ShardLeader, error) { return shard.NewLeader(cfg) }

// NewShardGateway builds the tier's routing gateway.
func NewShardGateway(cfg ShardGatewayConfig) (*ShardGateway, error) { return shard.NewGateway(cfg) }

// NewShardExchange builds an HTTP exchange client for a gateway URL.
func NewShardExchange(gatewayURL string) *ShardHTTPExchange { return shard.NewHTTPExchange(gatewayURL) }
