package flint_test

import (
	"math"
	"testing"

	"flint"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// examples do: spec → environment → simulation → forecasts.
func TestPublicAPIQuickstart(t *testing.T) {
	scale := flint.Scale{
		Clients: 100, TestRecords: 800, TraceDays: 7,
		MaxRounds: 6, EvalEvery: 3, MaxShardExamples: 120, SessionsPerDay: 6,
	}
	spec, err := flint.SpecFor(flint.Ads)
	if err != nil {
		t.Fatal(err)
	}
	env, gen, err := flint.BuildEnvironment(spec, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gen.NumClients() != 100 {
		t.Fatalf("clients %d", gen.NumClients())
	}
	rep, err := flint.RunSimulation(flint.AsyncConfig(spec, scale, 1), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 6 {
		t.Fatalf("rounds %d", len(rep.Rounds))
	}
	budget, err := flint.ForecastDeviceBudget(rep)
	if err != nil {
		t.Fatal(err)
	}
	if budget.ComputeSec <= 0 {
		t.Fatal("no compute accounted")
	}
	tee, err := flint.ForecastTEELoad(rep, env.UpdateBytes)
	if err != nil {
		t.Fatal(err)
	}
	if tee.UpdatesPerSec <= 0 {
		t.Fatal("no TEE load")
	}
}

// TestPublicAPIMeasurement covers the availability and device facades.
func TestPublicAPIMeasurement(t *testing.T) {
	sessions, err := flint.GenerateSessionLog(flint.DefaultSessionLog(300, 2))
	if err != nil {
		t.Fatal(err)
	}
	t1, err := flint.ComputeTable1(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Intersect <= 0 || t1.Intersect >= 1 {
		t.Fatalf("intersection %v", t1.Intersect)
	}
	eligible := flint.ApplyCriteria(sessions, flint.Criteria{RequireWiFi: true})
	if len(eligible) >= len(sessions) {
		t.Fatal("criteria must filter")
	}
	trace := flint.BuildTrace(eligible)
	series, err := flint.ComputeAvailabilitySeries(trace, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if series.Peak <= 0 {
		t.Fatal("empty series")
	}
	pool := flint.BenchDevicePool()
	if len(pool) != 27 {
		t.Fatalf("pool %d", len(pool))
	}
	rows, err := flint.RunDeviceBenchmarks(pool, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
}

// TestPublicAPIModels covers the model-zoo facade.
func TestPublicAPIModels(t *testing.T) {
	for _, k := range []flint.ModelKind{flint.ModelA, flint.ModelB, flint.ModelC, flint.ModelD, flint.ModelE} {
		m, err := flint.NewModel(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumParams() <= 0 {
			t.Fatalf("model %s empty", k)
		}
	}
	if err := flint.DefaultBandwidth.Validate(); err != nil {
		t.Fatal(err)
	}
	dp := flint.DPConfig{ClipNorm: 1, NoiseMultiplier: 1}
	eps, err := dp.EpsilonApprox(10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(eps) || eps <= 0 {
		t.Fatalf("epsilon %v", eps)
	}
}
