package flint_test

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flint"
)

// TestServingFacade exercises the live-serving exports end to end: start a
// coordinator behind its HTTP API and drive a small fleet through one
// committed round.
func TestServingFacade(t *testing.T) {
	cfg := flint.DefaultCoordConfig()
	cfg.Mode = flint.CoordAsync
	cfg.TargetUpdates = 8
	cfg.Quorum = 4
	cfg.RoundDeadline = 5 * time.Second
	c, err := flint.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(flint.CoordHandler(c))
	defer srv.Close()

	rep, err := flint.RunFleet(flint.FleetConfig{
		BaseURL:      srv.URL,
		Devices:      40,
		Rounds:       1,
		Seed:         3,
		ThinkTime:    10 * time.Millisecond,
		ComputeScale: 0,
		Timeout:      60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsCommitted < 1 || rep.EndVersion < 2 {
		t.Fatalf("fleet report: %+v", rep)
	}
	// In-flight devices can drive more commits between the watcher's
	// observation and fleet drain, so the live version only grows.
	if c.Version() < rep.EndVersion {
		t.Fatalf("facade version %d < fleet-observed %d", c.Version(), rep.EndVersion)
	}
	// The default fleet speaks the binary protocol; its wire traffic is
	// visible in the report.
	if rep.BinaryDevices != 40 || rep.BytesSent == 0 || rep.BytesRecv == 0 {
		t.Fatalf("wire stats: %d binary devices, %d sent, %d received",
			rep.BinaryDevices, rep.BytesSent, rep.BytesRecv)
	}
	// The scheduling plane is on by default and its report rides status.
	var sr flint.SchedReport = c.Status().Scheduler
	if !sr.Enabled {
		t.Fatalf("scheduler report: %+v", sr)
	}
	if labels := flint.SchedBucketLabels(); len(labels) == 0 {
		t.Fatal("no bandwidth bucket labels")
	}
}

// TestTensorFacade round-trips the codec exports.
func TestTensorFacade(t *testing.T) {
	v := []float64{0.25, -1, 3, 0}
	s, err := flint.ParseTensorScheme("raw64")
	if err != nil {
		t.Fatal(err)
	}
	if s != flint.TensorRawF64 {
		t.Fatalf("parsed scheme %v", s)
	}
	blob, err := flint.EncodeTensor(v, s)
	if err != nil {
		t.Fatal(err)
	}
	got, scheme, err := flint.DecodeTensor(blob)
	if err != nil {
		t.Fatal(err)
	}
	if scheme != flint.TensorRawF64 || len(got) != len(v) {
		t.Fatalf("decoded scheme %v, %d elems", scheme, len(got))
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], v[i])
		}
	}
	if _, err := flint.EncodeTensor(v, flint.TensorTopK(2)); err != nil {
		t.Fatal(err)
	}
}

// TestMultiTenantFacade drives the tenant exports end to end: one
// router hosting two jobs (one token-protected), two concurrent fleets
// on disjoint device IDs, both committing rounds, plus the rollup
// status shape.
func TestMultiTenantFacade(t *testing.T) {
	base := flint.DefaultCoordConfig()
	base.Mode = flint.CoordAsync
	base.TargetUpdates = 8
	base.Quorum = 4
	base.RoundDeadline = 5 * time.Second
	reg := flint.NewJobRegistry(base)
	defer reg.Close()
	specs, err := flint.LoadJobSpecs([]byte(`[
		{"name": "ads"},
		{"name": "msg", "mode": "async", "token": "fleet-t0ken"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if _, err := reg.Register(sp); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(flint.TenantHandler(reg, false))
	defer srv.Close()

	fleet := func(job, token string, offset int64) flint.FleetConfig {
		return flint.FleetConfig{
			BaseURL:   srv.URL,
			Job:       job,
			Token:     token,
			IDOffset:  offset,
			Devices:   40,
			Rounds:    2,
			Seed:      3 + offset,
			ThinkTime: 5 * time.Millisecond,
			Timeout:   90 * time.Second,
		}
	}
	var wg sync.WaitGroup
	reports := make([]*flint.FleetReport, 2)
	errs := make([]error, 2)
	for i, cfg := range []flint.FleetConfig{fleet("ads", "", 0), fleet("msg", "fleet-t0ken", 1000)} {
		wg.Add(1)
		go func(i int, cfg flint.FleetConfig) {
			defer wg.Done()
			reports[i], errs[i] = flint.RunFleet(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fleet %d: %v", i, err)
		}
		if reports[i].RoundsCommitted < 2 {
			t.Fatalf("fleet %d committed %d rounds, want >= 2", i, reports[i].RoundsCommitted)
		}
	}

	// The rollup sees both tenants' progress.
	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st flint.TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.DefaultJob != "ads" || st.Fleet.Jobs != 2 {
		t.Fatalf("rollup: default %q, %d jobs", st.DefaultJob, st.Fleet.Jobs)
	}
	for _, name := range []string{"ads", "msg"} {
		if st.Jobs[name].RoundsCommitted < 2 {
			t.Fatalf("job %s rollup shows %d rounds", name, st.Jobs[name].RoundsCommitted)
		}
	}
	// A tokenless probe of the protected tenant stays locked out even
	// while its own fleet runs.
	probe, err := srv.Client().Get(srv.URL + "/v1/jobs/msg/task")
	if err != nil {
		t.Fatal(err)
	}
	probe.Body.Close()
	if probe.StatusCode != 401 {
		t.Fatalf("tokenless probe = %d, want 401", probe.StatusCode)
	}
}
