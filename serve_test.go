package flint_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"flint"
)

// TestServingFacade exercises the live-serving exports end to end: start a
// coordinator behind its HTTP API and drive a small fleet through one
// committed round.
func TestServingFacade(t *testing.T) {
	cfg := flint.DefaultCoordConfig()
	cfg.Mode = flint.CoordAsync
	cfg.TargetUpdates = 8
	cfg.Quorum = 4
	cfg.RoundDeadline = 5 * time.Second
	c, err := flint.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(flint.CoordHandler(c))
	defer srv.Close()

	rep, err := flint.RunFleet(flint.FleetConfig{
		BaseURL:      srv.URL,
		Devices:      40,
		Rounds:       1,
		Seed:         3,
		ThinkTime:    10 * time.Millisecond,
		ComputeScale: 0,
		Timeout:      60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsCommitted < 1 || rep.EndVersion < 2 {
		t.Fatalf("fleet report: %+v", rep)
	}
	// In-flight devices can drive more commits between the watcher's
	// observation and fleet drain, so the live version only grows.
	if c.Version() < rep.EndVersion {
		t.Fatalf("facade version %d < fleet-observed %d", c.Version(), rep.EndVersion)
	}
	// The default fleet speaks the binary protocol; its wire traffic is
	// visible in the report.
	if rep.BinaryDevices != 40 || rep.BytesSent == 0 || rep.BytesRecv == 0 {
		t.Fatalf("wire stats: %d binary devices, %d sent, %d received",
			rep.BinaryDevices, rep.BytesSent, rep.BytesRecv)
	}
	// The scheduling plane is on by default and its report rides status.
	var sr flint.SchedReport = c.Status().Scheduler
	if !sr.Enabled {
		t.Fatalf("scheduler report: %+v", sr)
	}
	if labels := flint.SchedBucketLabels(); len(labels) == 0 {
		t.Fatal("no bandwidth bucket labels")
	}
}

// TestTensorFacade round-trips the codec exports.
func TestTensorFacade(t *testing.T) {
	v := []float64{0.25, -1, 3, 0}
	s, err := flint.ParseTensorScheme("raw64")
	if err != nil {
		t.Fatal(err)
	}
	if s != flint.TensorRawF64 {
		t.Fatalf("parsed scheme %v", s)
	}
	blob, err := flint.EncodeTensor(v, s)
	if err != nil {
		t.Fatal(err)
	}
	got, scheme, err := flint.DecodeTensor(blob)
	if err != nil {
		t.Fatal(err)
	}
	if scheme != flint.TensorRawF64 || len(got) != len(v) {
		t.Fatalf("decoded scheme %v, %d elems", scheme, len(got))
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], v[i])
		}
	}
	if _, err := flint.EncodeTensor(v, flint.TensorTopK(2)); err != nil {
		t.Fatal(err)
	}
}
