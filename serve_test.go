package flint_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"flint"
)

// TestServingFacade exercises the live-serving exports end to end: start a
// coordinator behind its HTTP API and drive a small fleet through one
// committed round.
func TestServingFacade(t *testing.T) {
	cfg := flint.DefaultCoordConfig()
	cfg.Mode = flint.CoordAsync
	cfg.TargetUpdates = 8
	cfg.Quorum = 4
	cfg.RoundDeadline = 5 * time.Second
	c, err := flint.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(flint.CoordHandler(c))
	defer srv.Close()

	rep, err := flint.RunFleet(flint.FleetConfig{
		BaseURL:      srv.URL,
		Devices:      40,
		Rounds:       1,
		Seed:         3,
		ThinkTime:    10 * time.Millisecond,
		ComputeScale: 0,
		Timeout:      60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsCommitted < 1 || rep.EndVersion < 2 {
		t.Fatalf("fleet report: %+v", rep)
	}
	// In-flight devices can drive more commits between the watcher's
	// observation and fleet drain, so the live version only grows.
	if c.Version() < rep.EndVersion {
		t.Fatalf("facade version %d < fleet-observed %d", c.Version(), rep.EndVersion)
	}
}
