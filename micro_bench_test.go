// Micro-benchmarks and ablation benches: per-model training throughput,
// aggregation cost, partitioning layout, and the design-choice ablations
// DESIGN.md §5 calls out.
package flint_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flint/internal/aggregator"
	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/core"
	"flint/internal/data"
	"flint/internal/fedsim"
	"flint/internal/model"
	"flint/internal/partition"
	"flint/internal/report"
	"flint/internal/sched"
	"flint/internal/tenant"
	"flint/internal/tensor"
)

// ------------------------------------------------- per-model training cost

func benchmarkTrainStep(b *testing.B, kind model.Kind) {
	m, err := model.New(kind, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := model.InputSpecFor(kind)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := data.Dummy(spec, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainStep(ds.Examples[i%ds.Len()])
	}
}

func BenchmarkTrainStepModelA(b *testing.B) { benchmarkTrainStep(b, model.KindA) }
func BenchmarkTrainStepModelB(b *testing.B) { benchmarkTrainStep(b, model.KindB) }
func BenchmarkTrainStepModelC(b *testing.B) { benchmarkTrainStep(b, model.KindC) }
func BenchmarkTrainStepModelD(b *testing.B) { benchmarkTrainStep(b, model.KindD) }
func BenchmarkTrainStepModelE(b *testing.B) { benchmarkTrainStep(b, model.KindE) }

func benchmarkPredict(b *testing.B, kind model.Kind) {
	m, err := model.New(kind, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := model.InputSpecFor(kind)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := data.Dummy(spec, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ds.Examples[i%ds.Len()])
	}
}

func BenchmarkPredictModelA(b *testing.B) { benchmarkPredict(b, model.KindA) }
func BenchmarkPredictModelB(b *testing.B) { benchmarkPredict(b, model.KindB) }
func BenchmarkPredictModelE(b *testing.B) { benchmarkPredict(b, model.KindE) }

// ----------------------------------------------------- aggregation kernels

func makeUpdates(n, dim int) []aggregator.Update {
	rng := rand.New(rand.NewSource(7))
	ups := make([]aggregator.Update, n)
	for i := range ups {
		d := tensor.NewVector(dim)
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		ups[i] = aggregator.Update{ClientID: int64(i), Delta: d, Weight: 1, Staleness: i % 5}
	}
	return ups
}

func BenchmarkAggregateFedAvg(b *testing.B) {
	ups := makeUpdates(16, 189_039)
	global := tensor.NewVector(189_039)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := (aggregator.FedAvg{}).Aggregate(global, ups); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateFedBuff(b *testing.B) {
	ups := makeUpdates(16, 189_039)
	global := tensor.NewVector(189_039)
	f := aggregator.FedBuff{ServerLR: 1, Alpha: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Aggregate(global, ups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAggregate is the commit pipeline's stage-1 kernel at
// fleet scale — 256 updates × the 189k-param model — through the sharded
// parallel reducer. A sequential FedAvg reference is timed in setup and
// reported as the speedup metric (the acceptance bar is ≥ 2x on a
// multi-core runner); the parallel result is bit-identical to the
// sequential one, so the comparison is purely about wall-clock.
func BenchmarkParallelAggregate(b *testing.B) {
	const dim, n = 189_039, 256
	ups := makeUpdates(n, dim)
	global := tensor.NewVector(dim)
	seq := aggregator.FedAvg{}
	par := aggregator.Parallel{Inner: seq}

	// Sequential reference timing (a few folds, averaged).
	const refIters = 3
	t0 := time.Now()
	for i := 0; i < refIters; i++ {
		if err := seq.Aggregate(global, ups); err != nil {
			b.Fatal(err)
		}
	}
	seqNs := float64(time.Since(t0).Nanoseconds()) / refIters

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := par.Aggregate(global, ups); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	parNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(seqNs/parNs, "speedup")
	b.ReportMetric(seqNs, "seq_ns/op")
}

func BenchmarkSecAggMaskedSum(b *testing.B) {
	ups := makeUpdates(8, 1519) // model A updates through the enclave
	sec := aggregator.SecAgg{MaskScale: 1, Seed: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sec.MaskedSum(ups, 1519); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------- tensor codec wire format

// codecBenchVector builds a model-B-sized synthetic update (189k params),
// the dense payload the serving protocol moves per task and per update.
func codecBenchVector() tensor.Vector {
	rng := rand.New(rand.NewSource(13))
	v := tensor.NewVector(189_039)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.01
	}
	return v
}

func benchmarkCodecEncode(b *testing.B, s codec.Scheme) {
	v := codecBenchVector()
	blob, err := codec.Encode(v, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(blob)), "payload_bytes")
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(v, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeRaw64(b *testing.B) { benchmarkCodecEncode(b, codec.RawF64) }
func BenchmarkCodecEncodeF32(b *testing.B)   { benchmarkCodecEncode(b, codec.F32) }
func BenchmarkCodecEncodeQ8(b *testing.B)    { benchmarkCodecEncode(b, codec.Q8) }
func BenchmarkCodecEncodeTopK(b *testing.B)  { benchmarkCodecEncode(b, codec.TopK(0)) }

func benchmarkCodecDecode(b *testing.B, s codec.Scheme) {
	blob, err := codec.Encode(codecBenchVector(), s)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeRaw64(b *testing.B) { benchmarkCodecDecode(b, codec.RawF64) }
func BenchmarkCodecDecodeF32(b *testing.B)   { benchmarkCodecDecode(b, codec.F32) }
func BenchmarkCodecDecodeQ8(b *testing.B)    { benchmarkCodecDecode(b, codec.Q8) }

// BenchmarkCodecDeltaBroadcast compares downlink bytes for one round of
// model broadcast: the full f32 vector (what every device got before the
// negotiated transport layer) vs a q8 delta frame against the device's
// last-seen version (what a delta-capable device gets now). The
// downlink_reduction metric is the headline claim: >= 3x on the
// 189k-param model.
func BenchmarkCodecDeltaBroadcast(b *testing.B) {
	base := codecBenchVector()
	// One committed round's movement: a small aggregated step.
	cur := base.Clone()
	step := rand.New(rand.NewSource(17))
	for i := range cur {
		cur[i] += step.NormFloat64() * 0.001
	}
	diff := cur.Clone()
	diff.Sub(base)
	full, err := codec.Encode(cur, codec.F32)
	if err != nil {
		b.Fatal(err)
	}
	delta, err := codec.EncodeDelta(diff, codec.Q8)
	if err != nil {
		b.Fatal(err)
	}
	once("delta-broadcast", func() {
		fmt.Printf("\nDelta broadcast — %d-param model, downlink bytes per task:\n", len(cur))
		fmt.Printf("  %-12s %10d bytes\n", "full f32", len(full))
		fmt.Printf("  %-12s %10d bytes  (%.1fx smaller)\n", "delta q8", len(delta),
			float64(len(full))/float64(len(delta)))
	})
	b.ReportMetric(float64(len(delta)), "delta_bytes")
	b.ReportMetric(float64(len(full)), "full_bytes")
	b.ReportMetric(float64(len(full))/float64(len(delta)), "downlink_reduction")
	b.SetBytes(int64(len(delta)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The per-commit server cost: encode the delta frame once.
		if _, err := codec.EncodeDelta(diff, codec.Q8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecApplyDelta is the device-side cost of folding a delta
// frame into the locally held vector.
func BenchmarkCodecApplyDelta(b *testing.B) {
	base := codecBenchVector()
	diff := base.Clone()
	diff.Scale(0.001)
	blob, err := codec.EncodeDelta(diff, codec.Q8)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.ApplyDelta(base, blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecJSONBaseline is the pre-refactor wire path — a JSON
// []float64 body — measured with the same vector so payload_bytes lines
// up against the codec schemes (the ≥4x dense-path reduction claim).
func BenchmarkCodecJSONBaseline(b *testing.B) {
	v := codecBenchVector()
	raw, err := json.Marshal([]float64(v))
	if err != nil {
		b.Fatal(err)
	}
	once("codec-sizes", func() {
		fmt.Printf("\nWire formats — %d-param dense update, bytes on the wire:\n", len(v))
		fmt.Printf("  %-8s %10d bytes\n", "json", len(raw))
		for _, s := range []codec.Scheme{codec.RawF64, codec.F32, codec.Q8, codec.TopK(0)} {
			blob, err := codec.Encode(v, s)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("  %-8s %10d bytes  (%.1fx smaller than json)\n",
				s, len(blob), float64(len(raw))/float64(len(blob)))
		}
	})
	b.ReportMetric(float64(len(raw)), "payload_bytes")
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal([]float64(v)); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------- coord serving hot paths

// BenchmarkCoordCheckin measures device check-in throughput on the live
// coordination server's sharded registry (the O(1) fleet-facing path).
func BenchmarkCoordCheckin(b *testing.B) {
	c, err := coord.New(coord.Config{
		Mode:          coord.ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 1 << 20, // never aggregate during the bench
		Quorum:        1 << 20,
		RoundDeadline: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := next.Add(1)
		info := coord.DeviceInfo{
			ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true,
			SessionSec: 120, Weight: 40,
		}
		for pb.Next() {
			c.CheckIn(info)
		}
	})
}

// BenchmarkCoordUpdateSubmit measures the device contribution path end to
// end: task assignment plus update submission through the bounded ingest
// queue, including the worker's FedBuff folds every 64 accepted updates.
// Each handed-out task is good for exactly one submission, so the loop must
// re-request a task per update — exactly what a real device does.
func BenchmarkCoordUpdateSubmit(b *testing.B) {
	c, err := coord.New(coord.Config{
		Mode:           coord.ModeAsync,
		ModelKind:      model.KindA,
		Seed:           1,
		TargetUpdates:  64,
		Quorum:         64,
		MaxInflight:    1 << 20,
		RoundDeadline:  time.Hour,
		QueueDepth:     1024,
		StalenessAlpha: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	dim := 1519 // model A
	delta := tensor.NewVector(dim)
	for i := range delta {
		delta[i] = 0.001
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := next.Add(1)
		c.CheckIn(coord.DeviceInfo{
			ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true,
			SessionSec: 3600, Weight: 10,
		})
		for pb.Next() {
			// The previous submission may still be in the queue, with
			// the assignment not yet consumed: ErrNoTask here is the
			// pipeline's backpressure, so yield and retry.
			var task coord.Task
			for {
				t, err := c.RequestTask(id)
				if err == nil {
					task = t
					break
				}
				if !errors.Is(err, coord.ErrNoTask) {
					b.Error(err)
					return
				}
				runtime.Gosched()
			}
			sub := coord.Submission{
				DeviceID:    id,
				RoundID:     task.RoundID,
				BaseVersion: task.BaseVersion,
				Weight:      10,
				Delta:       delta,
			}
			// A full queue is backpressure, not failure: yield and retry,
			// so the bench measures sustainable ingest throughput.
			for {
				err := c.SubmitUpdate(sub)
				if err == nil {
					break
				}
				if !errors.Is(err, coord.ErrBusy) {
					b.Error(err)
					return
				}
				runtime.Gosched()
			}
		}
	})
	b.StopTimer()
	accepted := c.Counters().Counter("update_accepted").Value()
	committed := c.Counters().Counter("rounds_committed").Value()
	if b.N > 64 && accepted == 0 {
		b.Fatal("no updates accepted: benchmark is measuring the rejection path")
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "commits/sec")
}

// BenchmarkCommitLatency is the zero-copy commit path's headline number:
// one full ingest→commit cycle on the 189k-param model — 16 devices
// request tasks, submit q8 updates in wire form, and the pipeline
// aggregates straight out of the pooled payload bytes (fused dequantize +
// weight + reduce + non-finite screen in one pass) and publishes. The
// materialize-then-reduce baseline — decode every update to a fresh dense
// vector at ingress, as the pipeline did before the fused kernels — runs
// in setup over the same blobs and is reported as materialized_ns/op,
// materialized_B/op, and the speedup ratio (acceptance: ≥1.5x ns/op,
// ≥50% fewer bytes). Both numbers include the whole pipeline (snapshot
// build, broadcast encode, store insert), so the ratio understates the
// ingest-side win rather than inflating it.
func BenchmarkCommitLatency(b *testing.B) {
	const (
		dim     = 189_039
		devices = 16
	)
	c, err := coord.New(coord.Config{
		Mode:          coord.ModeSync,
		ModelKind:     model.KindB, // 189k params
		Seed:          1,
		TargetUpdates: devices,
		Quorum:        devices,
		OverCommit:    1, // each device holds exactly one task per round
		RoundDeadline: time.Hour,
		QueueDepth:    64,
		KeepVersions:  4, // bound store growth across b.N commits
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for id := int64(1); id <= devices; id++ {
		c.CheckIn(coord.DeviceInfo{
			ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true,
			SessionSec: 3600, Weight: 10,
		})
	}
	// Pre-encoded q8 update blobs (the live uplink default): the bench
	// measures the server's commit path, not the device-side encode.
	rng := rand.New(rand.NewSource(21))
	blobs := make([][]byte, devices)
	for d := range blobs {
		v := tensor.NewVector(dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 0.01
		}
		blob, err := codec.Encode(v, codec.Q8)
		if err != nil {
			b.Fatal(err)
		}
		blobs[d] = blob
	}

	// round drives one full commit: every device requests its task and
	// submits, then the caller's clock runs until the version advances.
	// makeSub builds a fresh Submission per attempt — SubmitUpdate takes
	// payload ownership on every outcome, so a Submission is single-use.
	round := func(makeSub func(d int, task coord.Task) coord.Submission) {
		want := c.Version() + 1
		for d := 0; d < devices; d++ {
			id := int64(d + 1)
			var task coord.Task
			for {
				t, err := c.RequestTask(id)
				if err == nil {
					task = t
					break
				}
				if !errors.Is(err, coord.ErrNoTask) {
					b.Fatal(err)
				}
				runtime.Gosched() // commit in flight; next round opens shortly
			}
			for {
				err := c.SubmitUpdate(makeSub(d, task))
				if err == nil {
					break
				}
				if !errors.Is(err, coord.ErrBusy) {
					b.Fatal(err)
				}
				runtime.Gosched()
			}
		}
		for c.Version() < want {
			runtime.Gosched()
		}
	}

	// Materialize-then-reduce reference: decode each wire blob into a
	// fresh dense vector (the old ingress) and submit that.
	const refRounds = 3
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < refRounds; i++ {
		round(func(d int, task coord.Task) coord.Submission {
			v, _, err := codec.Decode(blobs[d])
			if err != nil {
				b.Fatal(err)
			}
			return coord.Submission{
				DeviceID: int64(d + 1), RoundID: task.RoundID,
				BaseVersion: task.BaseVersion, Weight: 1, Delta: v,
			}
		})
	}
	matNs := float64(time.Since(t0).Nanoseconds()) / refRounds
	runtime.ReadMemStats(&ms1)
	matBytes := float64(ms1.TotalAlloc-ms0.TotalAlloc) / refRounds

	// Zero-copy path: the pooled payload rides the queue in wire form and
	// the fused q8 kernel reduces straight out of it.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round(func(d int, task coord.Task) coord.Submission {
			p, err := codec.DecodePayloadFrom(bytes.NewReader(blobs[d]), dim)
			if err != nil {
				b.Fatal(err)
			}
			return coord.Submission{
				DeviceID: int64(d + 1), RoundID: task.RoundID,
				BaseVersion: task.BaseVersion, Weight: 1, Payload: p,
			}
		})
	}
	b.StopTimer()
	fusedNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(matNs, "materialized_ns/op")
	b.ReportMetric(matBytes, "materialized_B/op")
	b.ReportMetric(matNs/fusedNs, "speedup")
}

// BenchmarkRobustCommitLatency prices the defended commit path: the same
// 189k-param, 16-device wire-form cycle as BenchmarkCommitLatency, but
// through the full robustness pipeline — per-update norm screen (4 of the
// 16 blobs are sign-flip-boosted ×10 and rejected every round), sharded
// trimmed-mean over the survivors' pooled payload windows, then the
// central-DP clip + seeded-noise stage. The gated baseline pins how much
// the defenses cost on top of the raw zero-copy commit; screened-counter
// verification keeps a silently disabled screen from faking the number.
func BenchmarkRobustCommitLatency(b *testing.B) {
	const (
		dim      = 189_039
		devices  = 16
		poisoned = 4
	)
	c, err := coord.New(coord.Config{
		Mode:          coord.ModeSync,
		ModelKind:     model.KindB, // 189k params
		Seed:          1,
		TargetUpdates: devices,
		Quorum:        devices - poisoned,
		OverCommit:    1,
		RoundDeadline: time.Hour,
		QueueDepth:    64,
		KeepVersions:  4,
		Aggregation:   coord.AggregationConfig{Strategy: "trimmed-mean"},
		DP:            coord.DPConfig{Epsilon: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for id := int64(1); id <= devices; id++ {
		c.CheckIn(coord.DeviceInfo{
			ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true,
			SessionSec: 3600, Weight: 10,
		})
	}
	rng := rand.New(rand.NewSource(21))
	blobs := make([][]byte, devices)
	for d := range blobs {
		v := tensor.NewVector(dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 0.01
		}
		if d < poisoned {
			v.Scale(-10) // boosted sign-flip: norm 10× the honest median
		}
		blob, err := codec.Encode(v, codec.Q8)
		if err != nil {
			b.Fatal(err)
		}
		blobs[d] = blob
	}
	round := func() {
		want := c.Version() + 1
		for d := 0; d < devices; d++ {
			id := int64(d + 1)
			var task coord.Task
			for {
				t, err := c.RequestTask(id)
				if err == nil {
					task = t
					break
				}
				if !errors.Is(err, coord.ErrNoTask) {
					b.Fatal(err)
				}
				runtime.Gosched()
			}
			for {
				p, err := codec.DecodePayloadFrom(bytes.NewReader(blobs[d]), dim)
				if err != nil {
					b.Fatal(err)
				}
				err = c.SubmitUpdate(coord.Submission{
					DeviceID: id, RoundID: task.RoundID,
					BaseVersion: task.BaseVersion, Weight: 1, Payload: p,
				})
				if err == nil {
					break
				}
				if !errors.Is(err, coord.ErrBusy) {
					b.Fatal(err)
				}
				runtime.Gosched()
			}
		}
		for c.Version() < want {
			runtime.Gosched()
		}
	}
	round() // warm pools; proves the defended pipeline commits at all
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.StopTimer()
	screened := c.Counters().Counter("updates_screened_norm").Value()
	if want := int64(poisoned) * int64(b.N+1); screened != want {
		b.Fatalf("updates_screened_norm = %d, want %d: the screen is not doing its job", screened, want)
	}
	if c.Counters().Counter("dp_rounds").Value() == 0 {
		b.Fatal("dp_rounds = 0: the DP stage never ran")
	}
	b.ReportMetric(float64(screened)/float64(b.N+1), "screened/round")
}

// benchServePopulation is the device-id cycle length for the task-serve
// storm benchmarks below: large enough that assignment collisions are
// rare, small enough that a long ramp can't grow the registry past it.
const benchServePopulation = 16384

// BenchmarkTaskServeDuringCommit measures the headline serving claim of
// the broadcast-plane split: task-request latency on the 189k-param model
// *while the commit pipeline is continuously aggregating, encoding, and
// publishing*. Before the split every /v1/task waited on the coordinator
// mutex a commit held through O(K·dim) work and a store write; now the
// task path reads an atomic snapshot and never blocks. Each op is one
// device check-in + task request (what a round-start task storm looks
// like); committed rounds during the bench are reported so a run that
// quietly stopped committing can't fake the number.
func BenchmarkTaskServeDuringCommit(b *testing.B) {
	c, err := coord.New(coord.Config{
		Mode:           coord.ModeAsync,
		ModelKind:      model.KindB, // 189k params
		Seed:           1,
		TargetUpdates:  16,
		Quorum:         16,
		MaxInflight:    1 << 30,
		RoundDeadline:  time.Hour,
		QueueDepth:     4096,
		StalenessAlpha: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	info := func(id int64) coord.DeviceInfo {
		return coord.DeviceInfo{
			ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true,
			SessionSec: 3600, Weight: 10,
		}
	}
	// Committer goroutines keep the pipeline permanently busy: request,
	// submit, repeat — every 48 accepted updates is a full commit.
	stop := make(chan struct{})
	var committerWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		committerWG.Add(1)
		go func(id int64) {
			defer committerWG.Done()
			c.CheckIn(info(id))
			var delta tensor.Vector
			for {
				select {
				case <-stop:
					return
				default:
				}
				task, err := c.RequestTask(id)
				if err != nil {
					runtime.Gosched()
					continue
				}
				if delta == nil {
					delta = tensor.NewVector(task.Dim)
					delta.Fill(0.0001)
				}
				_ = c.SubmitUpdate(coord.Submission{
					DeviceID: id, RoundID: task.RoundID,
					BaseVersion: task.BaseVersion, Weight: 10, Delta: delta,
				})
			}
		}(int64(w + 1))
	}
	// Cycle a fixed population instead of registering a fresh device per
	// op: registry size and cohort-rebuild cost must not scale with
	// whatever iteration count the bench framework ramps to, or the
	// ns/op depends on b.N (the gated number turns into a coin flip).
	var next atomic.Int64
	start := c.Version()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := 1<<20 + next.Add(1)%benchServePopulation
			c.CheckIn(info(id))
			if _, err := c.RequestTaskWith(id, coord.TaskQuery{Binary: true}); err != nil &&
				!errors.Is(err, coord.ErrNoTask) {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	committerWG.Wait()
	commits := c.Version() - start
	if commits == 0 && b.Elapsed() > time.Second {
		// Short calibration runs legitimately end between commits; a
		// long run without one means the pipeline stalled and the
		// headline number is fake.
		b.Fatal("no commits happened: the bench measured an idle server")
	}
	b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/sec")
}

// BenchmarkMultiJobTaskServe is the tenancy tax gauge: the same task-serve
// storm as BenchmarkTaskServeDuringCommit, aimed at one job of a
// multi-tenant registry while 1 vs 3 jobs run their commit pipelines in
// the same process. Per-job coordinators share nothing but the Go
// runtime, so the jobs=3 number should track jobs=1 up to plain CPU
// contention — a widening gap means tenant state bled into a shared
// structure on the hot path.
func BenchmarkMultiJobTaskServe(b *testing.B) {
	for _, jobs := range []int{1, 3} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			base := coord.Config{
				Mode:           coord.ModeAsync,
				ModelKind:      model.KindB, // 189k params
				Seed:           1,
				TargetUpdates:  16,
				Quorum:         16,
				MaxInflight:    1 << 30,
				RoundDeadline:  time.Hour,
				QueueDepth:     4096,
				StalenessAlpha: 0.5,
			}
			reg := tenant.NewRegistry(base)
			defer reg.Close()
			coords := make([]*coord.Coordinator, 0, jobs)
			for i := 0; i < jobs; i++ {
				job, err := reg.Register(tenant.JobSpec{Name: fmt.Sprintf("job-%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				coords = append(coords, job.Coord)
			}
			info := func(id int64) coord.DeviceInfo {
				return coord.DeviceInfo{
					ID: id, Model: "Pixel-6", Platform: "Android",
					WiFi: true, BatteryHigh: true, ModernOS: true,
					SessionSec: 3600, Weight: 10,
				}
			}
			// Two committers per job keep every tenant's pipeline busy.
			stop := make(chan struct{})
			var committerWG sync.WaitGroup
			for _, c := range coords {
				for w := 0; w < 2; w++ {
					committerWG.Add(1)
					go func(c *coord.Coordinator, id int64) {
						defer committerWG.Done()
						c.CheckIn(info(id))
						var delta tensor.Vector
						for {
							select {
							case <-stop:
								return
							default:
							}
							task, err := c.RequestTask(id)
							if err != nil {
								runtime.Gosched()
								continue
							}
							if delta == nil {
								delta = tensor.NewVector(task.Dim)
								delta.Fill(0.0001)
							}
							_ = c.SubmitUpdate(coord.Submission{
								DeviceID: id, RoundID: task.RoundID,
								BaseVersion: task.BaseVersion, Weight: 10, Delta: delta,
							})
						}
					}(c, int64(w+1))
				}
			}
			served := coords[0]
			// Fixed population for the same reason as
			// BenchmarkTaskServeDuringCommit: ns/op must not depend on b.N.
			var next atomic.Int64
			start := served.Version()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := 1<<20 + next.Add(1)%benchServePopulation
					served.CheckIn(info(id))
					if _, err := served.RequestTaskWith(id, coord.TaskQuery{Binary: true}); err != nil &&
						!errors.Is(err, coord.ErrNoTask) {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			committerWG.Wait()
			commits := served.Version() - start
			if commits == 0 && b.Elapsed() > time.Second {
				b.Fatal("no commits happened: the bench measured an idle server")
			}
			b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/sec")
		})
	}
}

// ------------------------------------------------------ scheduling plane

// BenchmarkSchedCohortRebuild measures the scheduler's fleet-view
// rebuild — the O(fleet) cohort-map + over-commit + histogram pass the
// watchdog pays every rebuild period — up the census ladder the virtual
// load plane drives: 5k (the goroutine fleet's scale), 100k (the CI
// compressed-time smoke), and 1M (the full vload proof run). The rungs
// pin both the per-device cost and that it stays flat as the census
// grows three orders of magnitude.
func BenchmarkSchedCohortRebuild(b *testing.B) {
	for _, bench := range []struct {
		name string
		n    int
	}{
		{"census=5k", 5_000},
		{"census=100k", 100_000},
		{"census=1m", 1_000_000},
	} {
		b.Run(bench.name, func(b *testing.B) {
			s, err := sched.New(sched.Config{MinSamples: 1})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			devs := make([]sched.DeviceSample, bench.n)
			for i := range devs {
				bps := 1e4 * math.Exp(rng.NormFloat64()*2)
				devs[i] = sched.DeviceSample{
					ID:       int64(i + 1),
					WiFi:     rng.Intn(2) == 0,
					Eligible: rng.Intn(4) > 0,
					Tel: sched.Telemetry{
						DownBps: bps, UpBps: bps * 0.4, TaskSec: 0.5 + rng.Float64(),
						DownSamples: 3, UpSamples: 3, TaskSamples: 3,
					},
				}
			}
			est := map[string]sched.TaskEstimate{
				"default": {DownBytes: 760_000, UpBytes: 190_000},
				"lowbw":   {DownBytes: 48_000, UpBytes: 190_000},
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Rebuild(devs, 15*time.Second, est)
			}
			b.ReportMetric(float64(len(devs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mdev/sec")
		})
	}
}

// BenchmarkSchedAssignUnderChurn measures assignment throughput while
// the fleet composition churns: every op is a fresh device checking in
// with random eligibility attributes, feeding one telemetry observation,
// and requesting a task — with the scheduler's rebuild loop live at a
// 50ms cadence underneath. This is the serving path the scheduling plane
// must not slow down.
func BenchmarkSchedAssignUnderChurn(b *testing.B) {
	c, err := coord.New(coord.Config{
		Mode:           coord.ModeAsync,
		ModelKind:      model.KindA,
		Seed:           1,
		TargetUpdates:  1 << 20,
		Quorum:         1 << 20,
		MaxInflight:    1 << 30,
		RoundDeadline:  time.Hour,
		StalenessAlpha: 0.5,
		Sched:          sched.Config{RebuildEvery: 50 * time.Millisecond, MinSamples: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var next atomic.Int64
	var assigned atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(next.Add(1) * 7919))
		for pb.Next() {
			id := next.Add(1)
			info := coord.DeviceInfo{
				ID: id, Model: "Pixel-6", Platform: "Android",
				WiFi: rng.Intn(2) == 0, BatteryHigh: rng.Intn(2) == 0, ModernOS: true,
				SessionSec: 120, Weight: 40,
			}
			c.CheckIn(info)
			bps := 1e4 * math.Exp(rng.NormFloat64()*2)
			c.ObserveTelemetry(id, coord.TelemetryObservation{
				UpBytes: int(bps), UpDur: time.Second,
				DownBytes: int(bps), DownDur: time.Second,
			})
			if _, err := c.RequestTask(id); err == nil {
				assigned.Add(1)
			}
		}
	})
	b.StopTimer()
	if b.N > 100 && assigned.Load() == 0 {
		b.Fatal("no assignments: the bench measured the denial path")
	}
	b.ReportMetric(float64(assigned.Load())/b.Elapsed().Seconds(), "assigns/sec")
}

// TestCommitDeltaScratchAllocs is the snapshot-GC-pressure satellite's
// assertion: with several live devices pinning distinct delta bases, the
// commit pipeline's per-commit allocation stays bounded — the transient
// per-base diff vectors ride the coordinator's scratch pool instead of
// allocating a fresh full-dim clone each (which at KindB's 189k params
// cost ~1.5 MiB per base per commit before the pool; with 4+ pinned
// bases that pushed a commit past 10 MiB, roughly double today's
// budget).
func TestCommitDeltaScratchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation accounting")
	}
	c, err := coord.New(coord.Config{
		Mode:          coord.ModeSync,
		ModelKind:     model.KindB, // 189k params
		Seed:          1,
		TargetUpdates: 1,
		Quorum:        1,
		OverCommit:    8, // holders + driver share each round's budget
		RoundDeadline: time.Hour,
		QueueDepth:    16,
		KeepVersions:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	checkin := func(id int64) {
		c.CheckIn(coord.DeviceInfo{
			ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true,
			SessionSec: 3600, Weight: 10,
		})
	}
	driver := int64(99)
	checkin(driver)
	delta := tensor.NewVector(189_039)

	// commit drives one full round through the driver device and waits
	// for the publish.
	commit := func() {
		want := c.Version() + 1
		task, err := c.RequestTask(driver)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SubmitUpdate(coord.Submission{
			DeviceID: driver, RoundID: task.RoundID,
			BaseVersion: task.BaseVersion, Weight: 1, Delta: delta,
		}); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for c.Version() < want {
			if time.Now().After(deadline) {
				t.Fatalf("commit to v%d never happened", want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Warm-up: pin 4 holder devices at distinct published bases, so
	// every later commit pre-encodes delta frames for 4+ ring bases.
	for i := int64(1); i <= 4; i++ {
		checkin(i)
		if _, err := c.RequestTask(i); err != nil {
			t.Fatalf("holder %d: %v", i, err)
		}
		commit()
	}

	const commits = 5
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < commits; i++ {
		commit()
	}
	runtime.ReadMemStats(&m1)
	perCommit := (m1.TotalAlloc - m0.TotalAlloc) / commits
	// Measured ~9.5 MiB/commit with the scratch pool (published clone,
	// serialized snapshot, broadcast blob, encoded delta frames) and
	// ~15.9 MiB without it — the pinned bases' per-commit diff clones.
	// The budget sits between the two with ~25% headroom each way.
	const budget = 12 << 20
	if perCommit > budget {
		t.Fatalf("commit pipeline allocates %.2f MiB/commit, budget %.2f MiB — did the delta scratch pool regress?",
			float64(perCommit)/(1<<20), float64(budget)/(1<<20))
	}
	t.Logf("commit pipeline: %.2f MiB allocated per commit (budget %.2f MiB)",
		float64(perCommit)/(1<<20), float64(budget)/(1<<20))
}

// -------------------------------------------------------------- ablations

// BenchmarkAblationOverCommit quantifies the sync-mode trade-off: higher
// over-commitment shortens rounds (less straggler exposure) but wastes work.
func BenchmarkAblationOverCommit(b *testing.B) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale
	scale.MaxRounds = 25
	for i := 0; i < b.N; i++ {
		lines := []string{}
		for _, oc := range []float64{1.0, 1.3, 2.0} {
			env, _, err := core.BuildEnvironment(spec, scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.SyncConfig(spec, scale, 1)
			cfg.OverCommit = oc
			cfg.EvalEvery = 0
			rep, err := fedsim.Run(cfg, env)
			if err != nil {
				b.Fatal(err)
			}
			wasted := rep.TotalStragglers + rep.TotalInterrupted
			lines = append(lines, fmt.Sprintf(
				"  over-commit %.1f: %d rounds in %s, wasted tasks %d of %d",
				oc, len(rep.Rounds), report.Dur(rep.FinalVTime), wasted, rep.TotalStarted))
		}
		once("ablation-oc", func() {
			fmt.Printf("\nAblation — sync over-commitment (GFL-style dropout handling):\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// BenchmarkAblationStalenessAlpha sweeps FedBuff's discount exponent.
func BenchmarkAblationStalenessAlpha(b *testing.B) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale
	scale.MaxRounds = 60
	for i := 0; i < b.N; i++ {
		lines := []string{}
		for _, alpha := range []float64{0, 0.5, 2} {
			env, _, err := core.BuildEnvironment(spec, scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.AsyncConfig(spec, scale, 1)
			cfg.StalenessAlpha = alpha
			rep, err := fedsim.Run(cfg, env)
			if err != nil {
				b.Fatal(err)
			}
			best := 0.0
			for _, r := range rep.Rounds {
				if r.Evaluated() && r.Metric > best {
					best = r.Metric
				}
			}
			lines = append(lines, fmt.Sprintf("  alpha %.1f: best AUPR %.4f", alpha, best))
		}
		once("ablation-alpha", func() {
			fmt.Printf("\nAblation — FedBuff staleness-discount exponent:\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// BenchmarkAblationPartitionLayout compares partition-per-executor files
// against file-per-client, the §3.4 storage design choice.
func BenchmarkAblationPartitionLayout(b *testing.B) {
	gen, err := data.NewAdsGenerator(data.DefaultAdsConfig(200, 1))
	if err != nil {
		b.Fatal(err)
	}
	shards := gen.GenerateClients(200)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Partition-per-executor: 20 files.
		parts, err := partition.RoundRobin(shards, 20)
		if err != nil {
			b.Fatal(err)
		}
		perExec, err := partition.WriteAll(parts, fmt.Sprintf("%s/exec-%d", dir, i))
		if err != nil {
			b.Fatal(err)
		}
		// File-per-client: 200 files.
		single := make([]*partition.ExecutorPartition, len(shards))
		for j, s := range shards {
			single[j] = &partition.ExecutorPartition{Executor: j, Shards: []data.ClientShard{s}}
		}
		perClient, err := partition.WriteAll(single, fmt.Sprintf("%s/client-%d", dir, i))
		if err != nil {
			b.Fatal(err)
		}
		once("ablation-layout", func() {
			fmt.Printf("\nAblation — storage layout: %d executor files vs %d per-client files "+
				"(namespace growth is the §3.4 concern)\n", len(perExec), len(perClient))
		})
	}
}

// BenchmarkAblationRobustAggregation measures poisoning damage with and
// without the trimmed-mean defense (§3.6 / §4.2).
func BenchmarkAblationRobustAggregation(b *testing.B) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale
	scale.MaxRounds = 40
	adversary := &aggregator.Adversary{Attack: aggregator.SignFlip{Scale: 4}, Fraction: 0.25, Seed: 5}
	for i := 0; i < b.N; i++ {
		lines := []string{}
		for _, mode := range []struct {
			name string
			adv  *aggregator.Adversary
			trim float64
		}{
			{"clean", nil, 0},
			{"poisoned", adversary, 0},
			{"poisoned+trimmed-mean", adversary, 0.25},
		} {
			env, _, err := core.BuildEnvironment(spec, scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.AsyncConfig(spec, scale, 1)
			cfg.Adversary = mode.adv
			cfg.RobustTrimFrac = mode.trim
			rep, err := fedsim.Run(cfg, env)
			if err != nil {
				b.Fatal(err)
			}
			best := 0.0
			for _, r := range rep.Rounds {
				if r.Evaluated() && r.Metric > best {
					best = r.Metric
				}
			}
			lines = append(lines, fmt.Sprintf("  %-22s best AUPR %.4f", mode.name, best))
		}
		once("ablation-robust", func() {
			fmt.Printf("\nAblation — poisoning (25%% sign-flip) vs robust aggregation:\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// BenchmarkSimulationThroughput measures simulated client tasks per second
// of wall time — §3.4 reports 60k tasks/hour on 20 executors for Task C.
func BenchmarkSimulationThroughput(b *testing.B) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale
	scale.MaxRounds = 50
	env, _, err := core.BuildEnvironment(spec, scale, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		cfg := core.AsyncConfig(spec, scale, int64(i))
		cfg.EvalEvery = 0
		rep, err := fedsim.Run(cfg, env)
		if err != nil {
			b.Fatal(err)
		}
		total += rep.TotalStarted
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tasks/sec")
}
