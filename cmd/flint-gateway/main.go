// Command flint-gateway fronts a sharded coordination tier: N
// flint-server replicas (each started with -exchange pointing here and
// a distinct -shard-id) split the device-id space by consistent hash,
// and this gateway routes the public /v1 device API to the owning
// replica over pooled keep-alive connections. It also hosts the tier's
// round leader: shard partials arrive on the private /shard/v1
// exchange as codec wire blobs, get folded into the global model
// across shards, and GET /v1/status rolls every replica's status up
// into one tier document. While any replica's heartbeat is missing the
// tier halts task assignment (503 on /v1/task) until membership
// recovers — the paper's §3.4 halt-until-healthy rule run
// horizontally.
//
// The gateway must be started with the same model flags (-model,
// -seed, -name, or the same -jobs file) as its shards: the leader
// builds each job's initial global parameters from them, and a
// mismatch would make tier installs dimensionally incompatible with
// the shards' own models (caught at the first partial, but caught
// late).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"flint/internal/coord"
	"flint/internal/model"
	"flint/internal/shard"
	"flint/internal/tenant"
	"flint/internal/tensor"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs; list index = shard id (required)")
	replicas := flag.Int("replicas", 0, "ring vnodes per shard (0 = default 64)")
	grace := flag.Duration("grace", 3*time.Second, "heartbeat grace window; a shard silent longer halts the tier")
	buffer := flag.Int("buffer", 0, "partials buffered per cross-shard fold (0 = one per shard)")
	serverLR := flag.Float64("server-lr", 1, "cross-shard fold server learning rate")
	alpha := flag.Float64("alpha", 0, "cross-shard fold staleness-discount exponent")
	kind := flag.String("model", "A", "Table 5 model kind the tier trains (must match the shards)")
	name := flag.String("name", "served", "default job name (must match the shards' -name)")
	seed := flag.Int64("seed", 1, "model init seed (must match the shards)")
	jobsFile := flag.String("jobs", "", "multi-tenant tier: the same JSON job-spec file the shards run with")
	flag.Parse()

	urls := strings.Split(*shards, ",")
	clean := urls[:0]
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			clean = append(clean, u)
		}
	}
	if len(clean) == 0 {
		log.Fatal("-shards: need at least one shard URL")
	}

	// The leader derives each job's initial global params exactly the
	// way a shard's tenant registry does: overlay the job's spec on the
	// flag-derived base config, then build the model it names. Same
	// spec in, bit-identical version-1 parameters out on both sides of
	// the exchange.
	base := coord.Config{ModelKind: model.Kind(*kind), ModelName: *name, Seed: *seed}
	specs := []tenant.JobSpec{{Name: *name}}
	if *jobsFile != "" {
		data, err := os.ReadFile(*jobsFile)
		if err != nil {
			log.Fatalf("-jobs: %v", err)
		}
		if specs, err = tenant.LoadSpecs(data); err != nil {
			log.Fatalf("-jobs: %v", err)
		}
		if len(specs) == 0 {
			log.Fatalf("-jobs: %s declares no jobs", *jobsFile)
		}
	}
	byName := make(map[string]tenant.JobSpec, len(specs))
	for _, sp := range specs {
		byName[sp.Name] = sp
	}
	defaultJob := specs[0].Name
	params := func(job string) (tensor.Vector, error) {
		if job == "" {
			job = defaultJob
		}
		sp, ok := byName[job]
		if !ok {
			return nil, fmt.Errorf("job %q not in the gateway's spec set", job)
		}
		cfg, err := sp.CoordConfig(base)
		if err != nil {
			return nil, err
		}
		m, err := model.New(cfg.ModelKind, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return m.Params(), nil
	}

	leader, err := shard.NewLeader(shard.LeaderConfig{
		Shards:         len(clean),
		Grace:          *grace,
		Buffer:         *buffer,
		ServerLR:       *serverLR,
		StalenessAlpha: *alpha,
		Params:         params,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Eager default-job init so the rollup reports a live version (and
	// the fleet generator's watcher has a baseline) before the first
	// partial lands.
	if err := leader.EnsureJob(defaultJob); err != nil {
		log.Fatal(err)
	}
	gw, err := shard.NewGateway(shard.GatewayConfig{
		Shards:     clean,
		Replicas:   *replicas,
		Leader:     leader,
		DefaultJob: defaultJob,
	})
	if err != nil {
		log.Fatal(err)
	}

	foldBuffer := *buffer
	if foldBuffer <= 0 {
		foldBuffer = len(clean)
	}
	fmt.Printf("tier: %d shards, grace %s, fold buffer %d, default job %q\n",
		len(clean), *grace, foldBuffer, defaultJob)
	for i, u := range clean {
		fmt.Printf("  shard %d: %s\n", i, u)
	}
	fmt.Printf("listening on %s (/v1/* routed by device id, /shard/v1/* exchange, GET /v1/status tier rollup)\n", *addr)
	log.Fatal(tenant.ListenAndServe(*addr, gw))
}
