// Command flint-experiments regenerates every table and figure of the paper
// in one run, printing paper-vs-measured rows. This is the harness behind
// EXPERIMENTS.md; expect several minutes at the default scale.
package main

import (
	"flag"
	"fmt"
	"log"

	"flint/internal/availability"
	"flint/internal/core"
	"flint/internal/data"
	"flint/internal/device"
	"flint/internal/fedsim"
	"flint/internal/forecast"
	"flint/internal/model"
	"flint/internal/partition"
	"flint/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "reduced scale for smoke runs")
	flag.Parse()

	scale := core.MediumScale
	benchRecords := 5000
	table2Clients := [3]int{120_000, 120_000, 500_000}
	if *quick {
		scale = core.SmallScale
		benchRecords = 1000
		table2Clients = [3]int{20_000, 20_000, 50_000}
	}

	fig1(*seed)
	fig2AndTable1(*seed)
	table2(*seed, table2Clients)
	table5AndFig4(*seed, benchRecords)
	table3(scale, *seed)
	fig7(scale, *seed)
	fig8(scale, *seed)
	fig10(scale, *seed)
	table4(scale, *seed)
}

func fig1(seed int64) {
	pm := device.DefaultPopulation()
	pm.Seed = seed
	devs, err := pm.Sample(100000)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("Figure 1 — device distribution (100k users)",
		"platform", "distinct models", "top-8 share", "gray region", "paper shape")
	for _, plat := range []device.Platform{device.IOS, device.Android} {
		d := device.Distribution(devs, plat, 8)
		top := 0.0
		if len(d.TopShares) > 0 {
			top = d.TopShares[len(d.TopShares)-1]
		}
		shape := "concentrated"
		if plat == device.Android {
			shape = "diverse, long tail"
		}
		tbl.AddRow(string(plat), fmt.Sprintf("%d", d.DistinctModels), report.Pct(top), report.Pct(d.GrayShare), shape)
	}
	fmt.Println(tbl.String())
}

func fig2AndTable1(seed int64) {
	cfg := availability.DefaultLogConfig(4000, seed)
	sessions, err := availability.GenerateLog(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := availability.ComputeTable1(sessions)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("Table 1 — availability after criteria", "criterion", "measured", "paper")
	tbl.AddRow("A: WiFi", report.Pct(t1.WiFi), "70%")
	tbl.AddRow("B: battery >= 80%", report.Pct(t1.Battery), "34%")
	tbl.AddRow("C: OS >= Sept 2019", report.Pct(t1.ModernOS), "93%")
	tbl.AddRow("A∩B∩C", report.Pct(t1.Intersect), "22%")
	fmt.Println(tbl.String())

	trace := availability.BuildTrace(sessions)
	series, err := availability.ComputeSeries(trace, 3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 2 — weekly availability: %s\n", report.Sparkline(series.Normalized[:min(len(series.Normalized), 168)]))
	fmt.Printf("  peak/trough %.1fx (paper: trough ≈ 15%% of peak; post-criteria up to 14x)\n\n", series.PeakTroughRatio())
}

func table2(seed int64, clients [3]int) {
	type row struct {
		name     string
		q        data.QuantityModel
		pop      int
		paper    string
		lookback int
	}
	rows := []row{
		{"datasetA (ads)", data.AdsQuantity, clients[0], "pop 700k avg 99 std 667 max 39,731", 90},
		{"datasetB (messaging)", data.MessagingQuantity, clients[1], "pop 1.02M avg 184 std 374", 28},
		{"datasetC (search)", data.SearchQuantity, clients[2], "pop 16.4M avg 1.53 std 1.47 max 406", 61},
	}
	tbl := report.NewTable("Table 2 — proxy dataset quantity statistics",
		"dataset", "clients", "max", "avg", "std", "paper")
	for _, r := range rows {
		st, err := partition.QuantityStats(r.name, r.q, r.pop, 0, r.lookback, seed)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(r.name, fmt.Sprintf("%d", st.ClientPop), fmt.Sprintf("%d", st.MaxRecords),
			fmt.Sprintf("%.2f", st.AvgRecords), fmt.Sprintf("%.2f", st.StdRecords), r.paper)
	}
	fmt.Println(tbl.String())

	// Fig 5 — per-domain quantity distributions from materialized shards.
	gens := map[string]func() (data.Generator, error){
		"ads": func() (data.Generator, error) { return data.NewAdsGenerator(data.DefaultAdsConfig(300, seed)) },
		"messaging": func() (data.Generator, error) {
			return data.NewMessagingGenerator(data.DefaultMessagingConfig(300, seed))
		},
		"search": func() (data.Generator, error) { return data.NewSearchGenerator(data.DefaultSearchConfig(300, seed)) },
	}
	fmt.Println("Figure 5 — client data-quantity distributions (300 clients/domain):")
	for _, name := range []string{"ads", "messaging", "search"} {
		gen, err := gens[name]()
		if err != nil {
			log.Fatal(err)
		}
		var qs []float64
		for id := int64(0); id < 300; id++ {
			qs = append(qs, float64(len(gen.GenerateClient(id).Examples)))
		}
		sum := 0.0
		maxQ := 0.0
		for _, q := range qs {
			sum += q
			if q > maxQ {
				maxQ = q
			}
		}
		fmt.Printf("  %-10s mean %7.1f max %7.0f\n", name, sum/float64(len(qs)), maxQ)
	}
	fmt.Println()
}

func table5AndFig4(seed int64, records int) {
	pool := device.BenchPool()
	rows, err := device.Table5(pool, records, seed)
	if err != nil {
		log.Fatal(err)
	}
	paper := map[model.Kind]string{
		model.KindA: "0.057MB 0.11MB 3.08MB 4.98s ±3.37 1.63%",
		model.KindB: "0.76MB 1.52MB 10.64MB 61.81s ±44.17 3.91%",
		model.KindC: "0.85MB 1.88MB 0.85MB 3.26s ±2.23 5.29%",
		model.KindD: "10.79MB 3.12MB 8.37MB 70.13s ±50.82 4.72%",
		model.KindE: "7.52MB 7.38MB 43.14MB 238.38s ±178.13 6.43%",
	}
	tbl := report.NewTable(fmt.Sprintf("Table 5 — on-device benchmarks (%d records, %d devices)", records, len(pool)),
		"model", "params", "storage", "network", "memory", "mean", "stdev", "cpu%", "paper")
	for _, r := range rows {
		tbl.AddRow(string(r.Model), fmt.Sprintf("%d", r.Params),
			fmt.Sprintf("%.3f MB", r.StorageMB), fmt.Sprintf("%.2f MB", r.NetworkMB),
			fmt.Sprintf("%.2f MB", r.MemoryMB),
			fmt.Sprintf("%.2f s", r.MeanTimeS), fmt.Sprintf("%.2f s", r.StdevTimeS),
			fmt.Sprintf("%.2f", r.MeanCPU), paper[r.Model])
	}
	fmt.Println(tbl.String())

	// Fig 4 — ordering inversions across two tasks.
	fmt.Println("Figure 4 — heterogeneity: per-device time for tasks A (model B) and B (model E), s/record:")
	for _, p := range []string{"iPhone-13", "OnePlus-9", "Pixel-5", "Galaxy-J7"} {
		prof := device.ByName(pool)[p]
		ra, err := device.Run(model.KindB, prof, 100, seed)
		if err != nil {
			log.Fatal(err)
		}
		rb, err := device.Run(model.KindE, prof, 100, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s taskA %.4f  taskB %.4f\n", p, ra.SecPerRecord, rb.SecPerRecord)
	}
	fmt.Println()
}

func table3(scale core.Scale, seed int64) {
	tbl := report.NewTable("Table 3 — FedBuff speedup over FedAvg (shared quality target)",
		"task", "speedup", "async tasks started", "client compute", "paper")
	paper := map[core.Domain]string{
		core.Ads:       "1.2x, 48.8k tasks, 7.5 hrs",
		core.Messaging: "6x, 32.3k tasks, 6.8 days",
		core.Search:    "2x, 610k tasks, 25.9 days",
	}
	for _, d := range core.Domains {
		cmp, err := core.CompareModes(d, scale, seed, 0.97)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(string(d), fmt.Sprintf("%.2fx", cmp.SpeedUp),
			fmt.Sprintf("%d", cmp.AsyncTasksStarted),
			report.Dur(cmp.AsyncComputeSec), paper[d])
	}
	fmt.Println(tbl.String())
}

func fig7(scale core.Scale, seed int64) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 7 — buffer size vs buffer-fill duration (async):")
	for _, buf := range []int{2, 5, 10, 20, 40} {
		env, _, err := core.BuildEnvironment(spec, scale, seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.AsyncConfig(spec, scale, seed)
		cfg.BufferSize = buf
		cfg.MaxRounds = 12
		cfg.EvalEvery = 0
		rep, err := fedsim.Run(cfg, env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  buffer %3d: mean fill %s over %d rounds\n",
			buf, report.Dur(rep.MeanBufferFillSec()), len(rep.Rounds))
	}
	fmt.Println()
}

func fig8(scale core.Scale, seed int64) {
	spec, err := core.SpecFor(core.Ads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 8 — succeeded / interrupted / stale vs concurrency and staleness:")
	for _, conc := range []int{8, 32, 128} {
		for _, stale := range []int{1, 5, 20} {
			env, _, err := core.BuildEnvironment(spec, scale, seed)
			if err != nil {
				log.Fatal(err)
			}
			cfg := core.AsyncConfig(spec, scale, seed)
			cfg.Concurrency = conc
			cfg.MaxStaleness = stale
			cfg.BufferSize = 4
			cfg.MaxRounds = 30
			cfg.EvalEvery = 0
			rep, err := fedsim.Run(cfg, env)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  concurrency %4d staleness %3d: started %5d ok %5d interrupted %4d stale %4d\n",
				conc, stale, rep.TotalStarted, rep.TotalSucceeded, rep.TotalInterrupted, rep.TotalStale)
		}
	}
	fmt.Println()
}

func fig10(scale core.Scale, seed int64) {
	schedules := []model.Schedule{
		model.ExpDecayLR{Base: 0.3, Rate: 0.9, DecaySteps: 20, Floor: 0.02},
		model.ExpDecayLR{Base: 1.2, Rate: 0.98, DecaySteps: 20, Floor: 0.02},
	}
	lrScale := scale
	lrScale.MaxRounds = 20
	out, err := core.RunLRStudy(lrScale, schedules, 5, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 10 — LR schedule stability (5 trials each, AUPR trajectories):")
	for name, trials := range out {
		fmt.Printf("  %s\n", name)
		var finals []float64
		for _, tr := range trials {
			fmt.Printf("    %s final %.4f\n", report.Sparkline(tr.Metrics), tr.Final)
			finals = append(finals, tr.Final)
		}
		mean, sd := meanStd(finals)
		fmt.Printf("    across trials: mean %.4f stdev %.4f\n", mean, sd)
	}
	fmt.Println()
}

func table4(scale core.Scale, seed int64) {
	paper := map[core.Domain]string{
		core.Ads:       "4.2 days, -1.85%",
		core.Messaging: "18.9 hrs, -0.18%",
		core.Search:    "2.58 hrs, -1.64%",
	}
	tbl := report.NewTable("Table 4 — projected FL training time and performance difference",
		"domain", "metric", "centralized", "federated", "diff", "training time", "paper")
	for _, d := range core.Domains {
		res, err := core.RunCaseStudy(d, scale, seed)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(string(d), string(res.Metric),
			fmt.Sprintf("%.4f", res.CentralizedMetric),
			fmt.Sprintf("%.4f", res.FLMetric),
			fmt.Sprintf("%+.2f%%", res.PerfDiffPct),
			report.Dur(res.TrainingVTimeSec), paper[d])
		budget, err := forecast.BudgetFromReport(res.Report)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: client compute %s, %d tasks started\n",
			d, report.Dur(budget.ComputeSec), budget.TasksStarted)
	}
	fmt.Println(tbl.String())
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return mean, sqrtf(sq / float64(len(xs)))
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
