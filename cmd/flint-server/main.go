// Command flint-server runs the live federated coordination service: the
// wall-clock serving counterpart of cmd/flint-sim's virtual-clock simulator.
// Devices check in, receive training tasks, and submit updates over the
// /v1 JSON API; the server runs sync FedAvg or async FedBuff rounds and
// publishes model versions. Pair it with cmd/flint-fleet for load.
//
// With -jobs, the server hosts multiple FL jobs as tenants of one
// process: each spec in the JSON file becomes an independent job behind
// /v1/jobs/<name>/..., the first spec is the default job the bare /v1/*
// paths alias to, and per-job device quotas and bearer tokens gate
// admission. Without -jobs a single default job is built from the flags
// — the classic single-tenant server, now served through the same
// routing plane.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/model"
	"flint/internal/sched"
	"flint/internal/shard"
	"flint/internal/tenant"
	"flint/internal/transport"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mode := flag.String("mode", "sync", "training mode: sync (FedAvg) or async (FedBuff)")
	kind := flag.String("model", "A", "Table 5 model kind to train (A–E)")
	name := flag.String("name", "served", "modelstore name for published versions")
	seed := flag.Int64("seed", 1, "model init seed")
	target := flag.Int("target", 32, "updates per aggregation (round size / async buffer K)")
	quorum := flag.Int("quorum", 0, "minimum updates accepted at the round deadline (default target/2)")
	overCommit := flag.Float64("overcommit", 1.3, "sync assignment multiplier over target")
	deadline := flag.Duration("deadline", 15*time.Second, "round wall-clock deadline")
	maxStale := flag.Int("max-staleness", 6, "async: reject updates older than this many versions (0 = unbounded)")
	queue := flag.Int("queue", 0, "ingest queue depth (default 4x target)")
	shards := flag.Int("shards", 64, "device registry lock stripes")
	ttl := flag.Duration("ttl", 2*time.Minute, "device liveness TTL")
	wifi := flag.Bool("require-wifi", true, "participation criterion A: WiFi")
	battery := flag.Bool("require-battery", true, "participation criterion B: battery >= 80%")
	modernOS := flag.Bool("require-modern-os", false, "participation criterion C: modern OS")
	minSession := flag.Float64("min-session", 0, "minimum expected session seconds")
	serverLR := flag.Float64("server-lr", 1, "async FedBuff server learning rate")
	alpha := flag.Float64("alpha", 0.5, "async FedBuff staleness-discount exponent")
	aggregation := flag.String("aggregation", "", "commit reducer: fedavg, fedbuff, trimmed-mean, or coordinate-median (default: the mode's standard reducer)")
	trimFrac := flag.Float64("trim-frac", 0, "trimmed-mean: per-side trim fraction in [0, 0.5) (default 0.1)")
	screenMaxNorm := flag.Float64("screen-max-norm", 0, "reject updates with L2 norm above this cap before the reduce (0 disables)")
	screenMedianFactor := flag.Float64("screen-median-factor", 0, "reject updates with norm above this multiple of the round's median norm (0 disables; robust reducers default it to 4)")
	dpEpsilon := flag.Float64("dp-epsilon", 0, "central DP: per-round epsilon target (0 disables noise)")
	dpDelta := flag.Float64("dp-delta", 0, "central DP: delta (default 1e-5)")
	dpClip := flag.Float64("dp-clip", 0, "central DP: aggregate-delta L2 clip norm (default 1 when -dp-epsilon is set; alone enables clip-only)")
	dpSeed := flag.Int64("dp-seed", 0, "central DP: noise seed (default -seed)")
	localSteps := flag.Int("local-steps", 20, "local training steps hint sent to devices")
	taskScheme := flag.String("task-scheme", "f32", "default cohort: broadcast encoding for /v1/task (raw64, f32, q8, or topk[:k])")
	updateScheme := flag.String("update-scheme", "q8", "default cohort: delta encoding binary devices use on /v1/update")
	deltaScheme := flag.String("delta-scheme", "q8", "default cohort: delta-broadcast encoding served against a device's last-seen version")
	lowbwTaskScheme := flag.String("lowbw-task-scheme", "topk", "low-bandwidth cohort: broadcast encoding for /v1/task")
	lowbwUpdateScheme := flag.String("lowbw-update-scheme", "q8", "low-bandwidth cohort: /v1/update delta encoding")
	lowbwDeltaScheme := flag.String("lowbw-delta-scheme", "topk", "low-bandwidth cohort: delta-broadcast encoding")
	deltaHistory := flag.Int("delta-history", 8, "published versions retained as delta-broadcast bases (negative disables delta broadcast)")
	lowbwDeltaHistory := flag.Int("lowbw-delta-history", 0, "low-bandwidth cohort delta window override (0 inherits -delta-history, negative disables deltas for the cohort)")
	jobsFile := flag.String("jobs", "", "multi-tenant mode: JSON file of job specs (each spec overlays the flag-derived base config)")
	admin := flag.Bool("admin", false, "enable POST /v1/jobs job registration")
	maxDevices := flag.Int("max-devices", 0, "default job device quota (0 = unlimited; per-job specs override)")
	schedOn := flag.Bool("sched", true, "enable the measured scheduling plane (bandwidth cohorts, deadline gate, dynamic over-commit)")
	schedLowBWMbps := flag.Float64("sched-lowbw-mbps", 1.5, "measured downlink below this maps a device to the lowbw cohort")
	schedAlpha := flag.Float64("sched-alpha", 0.3, "telemetry EWMA smoothing factor")
	schedMaxOC := flag.Float64("sched-max-overcommit", 3, "cap on the deadline-driven sync assignment multiplier")
	schedRebuild := flag.Duration("sched-rebuild", 2*time.Second, "scheduler fleet-view rebuild period")
	schedCompression := flag.Float64("sched-time-compression", 1, "virtual-time fleets: device-reported timings arrive this many times faster than wall clock (match flint-fleet -virtual -compression)")
	exchange := flag.String("exchange", "", "shard mode: gateway base URL for the tier exchange (the server becomes one replica of a sharded tier)")
	shardID := flag.Int("shard-id", 0, "shard mode: this replica's index on the gateway's ring")
	shardHB := flag.Duration("shard-heartbeat", time.Second, "shard mode: tier heartbeat interval (must be well under the leader's grace window)")
	persistBarrier := flag.Int("persist-barrier", 8, "fsync the write-behind snapshot every N commits (negative disables the barrier)")
	storeDir := flag.String("store-dir", "", "persist published model versions to this directory")
	keepVersions := flag.Int("keep-versions", 8, "published model versions to retain (negative keeps all)")
	statusEvery := flag.Duration("status-every", 5*time.Second, "periodic status log interval (0 disables)")
	flag.Parse()

	m, err := coord.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	scheme := func(flagName, value string) codec.Scheme {
		s, err := codec.ParseScheme(value)
		if err != nil {
			log.Fatalf("-%s: %v", flagName, err)
		}
		return s
	}
	transportCfg := transport.Config{
		Default: transport.Policy{
			Task:   scheme("task-scheme", *taskScheme),
			Update: scheme("update-scheme", *updateScheme),
			Delta:  scheme("delta-scheme", *deltaScheme),
		},
		LowBW: transport.Policy{
			Task:       scheme("lowbw-task-scheme", *lowbwTaskScheme),
			Update:     scheme("lowbw-update-scheme", *lowbwUpdateScheme),
			Delta:      scheme("lowbw-delta-scheme", *lowbwDeltaScheme),
			DeltaDepth: *lowbwDeltaHistory,
		},
		DeltaHistory: *deltaHistory,
	}
	cfg := coord.Config{
		Mode:           m,
		ModelKind:      model.Kind(*kind),
		ModelName:      *name,
		Seed:           *seed,
		TargetUpdates:  *target,
		Quorum:         *quorum,
		OverCommit:     *overCommit,
		RoundDeadline:  *deadline,
		MaxStaleness:   *maxStale,
		QueueDepth:     *queue,
		RegistryShards: *shards,
		DeviceTTL:      *ttl,
		Criteria: availability.Criteria{
			RequireWiFi:        *wifi,
			RequireBatteryHigh: *battery,
			RequireModernOS:    *modernOS,
			MinSessionSec:      *minSession,
		},
		ServerLR:       *serverLR,
		StalenessAlpha: *alpha,
		Aggregation: coord.AggregationConfig{
			Strategy:           *aggregation,
			TrimFrac:           *trimFrac,
			ScreenMaxNorm:      *screenMaxNorm,
			ScreenMedianFactor: *screenMedianFactor,
		},
		DP: coord.DPConfig{
			Epsilon:  *dpEpsilon,
			Delta:    *dpDelta,
			ClipNorm: *dpClip,
			Seed:     *dpSeed,
		},
		LocalSteps: *localSteps,
		MaxDevices: *maxDevices,
		Transport:  transportCfg,
		Sched: sched.Config{
			Disable:         !*schedOn,
			Alpha:           *schedAlpha,
			LowBWBps:        *schedLowBWMbps * 1e6 / 8,
			MaxOverCommit:   *schedMaxOC,
			RebuildEvery:    *schedRebuild,
			TimeCompression: *schedCompression,
		},
		PersistBarrier: *persistBarrier,
		StoreDir:       *storeDir,
		KeepVersions:   *keepVersions,
	}
	if *exchange != "" {
		// Shard mode: commits reduce to partials shipped to the tier
		// leader behind the gateway, and a heartbeat keeps this replica
		// counted in the tier's membership (stop pinging and the tier
		// halts — the paper's §3.4 rule run horizontally).
		cfg.Exchange = shard.NewHTTPExchange(*exchange)
		cfg.ShardID = *shardID
	}
	// Every server is a tenant registry now: without -jobs it hosts one
	// flag-derived default job and the bare /v1 API behaves exactly as
	// before; with -jobs each spec overlays the flag config.
	specs := []tenant.JobSpec{{Name: *name, MaxDevices: *maxDevices}}
	if *jobsFile != "" {
		data, err := os.ReadFile(*jobsFile)
		if err != nil {
			log.Fatalf("-jobs: %v", err)
		}
		if specs, err = tenant.LoadSpecs(data); err != nil {
			log.Fatalf("-jobs: %v", err)
		}
		if len(specs) == 0 {
			log.Fatalf("-jobs: %s declares no jobs", *jobsFile)
		}
	}
	reg := tenant.NewRegistry(cfg)
	defer reg.Close()
	for _, sp := range specs {
		if _, err := reg.Register(sp); err != nil {
			log.Fatal(err)
		}
	}
	if *exchange != "" {
		hb := shard.StartHeartbeat(shard.NewHTTPExchange(*exchange), *shardID, *shardHB)
		defer hb.Stop()
		fmt.Printf("shard %d of tier at %s (heartbeat every %s)\n", *shardID, *exchange, *shardHB)
	}

	if *statusEvery > 0 {
		go func() {
			for range time.Tick(*statusEvery) {
				for _, j := range reg.Jobs() {
					st := j.Coord.Status()
					log.Printf("[%s] v%d round=%d phase=%s collected=%d/%d devices: %d live, %d eligible, %d assigned",
						j.Spec.Name, st.Version, st.Round.ID, st.Round.Phase, st.Round.Collected, st.Round.Target,
						st.Devices.Live, st.Devices.Eligible, st.Devices.Assigned)
				}
			}
		}()
	}

	for _, j := range reg.Jobs() {
		eff := j.Coord.Config()
		guard := "open"
		switch {
		case j.Spec.Token != "" && eff.MaxDevices > 0:
			guard = fmt.Sprintf("token auth, quota %d", eff.MaxDevices)
		case j.Spec.Token != "":
			guard = "token auth"
		case eff.MaxDevices > 0:
			guard = fmt.Sprintf("quota %d", eff.MaxDevices)
		}
		fmt.Printf("job %s: %s mode, model %s (%d params), target %d, quorum %d, deadline %s (%s)\n",
			j.Spec.Name, eff.Mode, eff.ModelKind, mustParams(eff.ModelKind, eff.Seed),
			eff.TargetUpdates, eff.Quorum, eff.RoundDeadline, guard)
		tr := eff.Transport
		fmt.Printf("  wire: default cohort %s/%s/%s (delta depth %d); lowbw %s/%s/%s (delta depth %d)\n",
			tr.Default.Task, tr.Default.Update, tr.Default.Delta, tr.DepthFor(transport.CohortDefault),
			tr.LowBW.Task, tr.LowBW.Update, tr.LowBW.Delta, tr.DepthFor(transport.CohortLowBW))
		if agg := eff.Aggregation; agg.Strategy != "" || agg.ScreenMaxNorm > 0 || agg.ScreenMedianFactor > 0 {
			line := "  robust: " + j.Coord.Status().Aggregation
			if agg.Strategy == "trimmed-mean" {
				line += fmt.Sprintf(" (trim %.2f/side)", agg.TrimFrac)
			}
			if agg.ScreenMaxNorm > 0 {
				line += fmt.Sprintf(", norm screen ≤ %.3g", agg.ScreenMaxNorm)
			}
			if agg.ScreenMedianFactor > 0 {
				line += fmt.Sprintf(", norm screen ≤ %.3g× median", agg.ScreenMedianFactor)
			}
			fmt.Println(line)
		}
		if eff.DP.Enabled() {
			if eff.DP.Epsilon > 0 {
				fmt.Printf("  privacy: central DP, ε=%.3g/round at δ=%.0e, clip %.3g, seed %d\n",
					eff.DP.Epsilon, eff.DP.Delta, eff.DP.ClipNorm, eff.DP.Seed)
			} else {
				fmt.Printf("  privacy: aggregate clip %.3g (no noise)\n", eff.DP.ClipNorm)
			}
		}
	}
	def := reg.Default()
	if sc := def.Coord.Config().Sched; !sc.Disable {
		fmt.Printf("sched: lowbw < %.2f Mbps measured downlink, deadline gate (sync), over-commit ≤ %.1fx, rebuild every %s, telemetry TTL %s\n",
			sc.LowBWBps*8/1e6, sc.MaxOverCommit, sc.RebuildEvery, sc.TelemetryTTL)
	} else {
		fmt.Println("sched: disabled (radio-label cohorts, static over-commit)")
	}
	fmt.Printf("listening on %s (/v1/* → default job %q, /v1/jobs/<job>/*, GET /v1/status rollup; admin registration %v)\n",
		*addr, def.Spec.Name, *admin)
	srv := tenant.NewServer(reg, *admin)
	log.Fatal(tenant.ListenAndServe(*addr, srv))
}

func mustParams(kind model.Kind, seed int64) int {
	m, err := model.New(kind, seed)
	if err != nil {
		log.Fatal(err)
	}
	return m.NumParams()
}
