// Command flint-sim runs one FL simulation job (§3.4) for a case-study
// domain in either training mode and prints model and system metrics over
// rounds and virtual time.
package main

import (
	"flag"
	"fmt"
	"log"

	"flint/internal/core"
	"flint/internal/fedsim"
	"flint/internal/forecast"
	"flint/internal/report"
)

func main() {
	domainFlag := flag.String("domain", "ads", "case-study domain: ads | messaging | search")
	mode := flag.String("mode", "fedbuff", "training mode: fedavg | fedbuff")
	clients := flag.Int("clients", 300, "client population")
	rounds := flag.Int("rounds", 40, "max aggregation rounds")
	evalEvery := flag.Int("eval", 5, "evaluate every N rounds")
	concurrency := flag.Int("concurrency", 32, "async max concurrency")
	buffer := flag.Int("buffer", 8, "async buffer size K")
	staleness := flag.Int("staleness", 10, "async staleness limit")
	cohort := flag.Int("cohort", 8, "sync cohort size")
	seed := flag.Int64("seed", 1, "job seed")
	ckpt := flag.String("checkpoint", "", "checkpoint path (enables checkpointing every 5 rounds)")
	flag.Parse()

	d := core.Domain(*domainFlag)
	spec, err := core.SpecFor(d)
	if err != nil {
		log.Fatal(err)
	}
	scale := core.Scale{
		Clients: *clients, TestRecords: 8 * *clients, TraceDays: 14,
		MaxRounds: *rounds, EvalEvery: *evalEvery, MaxShardExamples: 400,
	}
	env, _, err := core.BuildEnvironment(spec, scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var cfg fedsim.Config
	switch *mode {
	case "fedavg":
		cfg = core.SyncConfig(spec, scale, *seed)
		cfg.CohortSize = *cohort
	case "fedbuff":
		cfg = core.AsyncConfig(spec, scale, *seed)
		cfg.Concurrency = *concurrency
		cfg.BufferSize = *buffer
		cfg.MaxStaleness = *staleness
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if *ckpt != "" {
		cfg.CheckpointEvery = 5
		cfg.CheckpointPath = *ckpt
	}

	rep, err := fedsim.Run(cfg, env)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FLINT simulation — domain %s, mode %s, model %s\n\n", d, cfg.Mode, cfg.ModelKind)
	tbl := report.NewTable("Rounds", "round", "vtime", string(spec.Metric), "lr", "started", "ok", "stale", "interrupted", "stragglers")
	for _, r := range rep.Rounds {
		metric := "-"
		if r.Evaluated() {
			metric = fmt.Sprintf("%.4f", r.Metric)
		}
		tbl.AddRow(
			fmt.Sprintf("%d", r.Round), report.Dur(r.VTime), metric,
			fmt.Sprintf("%.3f", r.LR),
			fmt.Sprintf("%d", r.Started), fmt.Sprintf("%d", r.Succeeded),
			fmt.Sprintf("%d", r.Stale), fmt.Sprintf("%d", r.Interrupted),
			fmt.Sprintf("%d", r.Stragglers),
		)
	}
	fmt.Println(tbl.String())
	_, _, vals := rep.MetricSeries()
	fmt.Printf("%s trajectory: %s\n", spec.Metric, report.Sparkline(vals))
	fmt.Printf("Summary: %s\n\n", rep.String())

	budget, err := forecast.BudgetFromReport(rep)
	if err != nil {
		log.Fatal(err)
	}
	tee, err := forecast.TEELoad(rep, env.UpdateBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Forecast: client compute %s, energy %.1f Wh, wasted tasks %.1f%%\n",
		report.Dur(budget.ComputeSec), budget.EnergyWh, 100*budget.WastedFraction)
	fmt.Printf("          TEE ingest %.3f updates/s = %.4f MB/s\n",
		tee.UpdatesPerSec, tee.BytesPerSec/1e6)
}
