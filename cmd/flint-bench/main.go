// Command flint-bench is the on-device benchmark tool of §3.2: it deploys
// every Table 5 model architecture to the 27-device pool (simulated; see
// DESIGN.md §2), reports the Table 5 rows, the Fig 4 per-device comparison,
// and the Fig 1 hardware-population distribution.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flint/internal/device"
	"flint/internal/model"
	"flint/internal/report"
)

func main() {
	records := flag.Int("records", 5000, "records per benchmark (paper uses 5,000)")
	seed := flag.Int64("seed", 1, "benchmark seed")
	fig1 := flag.Bool("fig1", false, "also print the Fig 1 device-population distribution")
	fig4 := flag.Bool("fig4", false, "also print the Fig 4 per-device comparison (tasks A and B)")
	csv := flag.Bool("csv", false, "emit Table 5 as CSV")
	flag.Parse()

	pool := device.BenchPool()
	rows, err := device.Table5(pool, *records, *seed)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable(
		fmt.Sprintf("Table 5 — on-device evaluation over %d records across %d devices", *records, len(pool)),
		"model", "description", "params", "storage", "network", "memory", "mean time", "stdev", "cpu%")
	for _, r := range rows {
		tbl.AddRow(
			string(r.Model), r.Description,
			fmt.Sprintf("%d", r.Params),
			fmt.Sprintf("%.3f MB", r.StorageMB),
			fmt.Sprintf("%.2f MB", r.NetworkMB),
			fmt.Sprintf("%.2f MB", r.MemoryMB),
			fmt.Sprintf("%.2f s", r.MeanTimeS),
			fmt.Sprintf("%.2f s", r.StdevTimeS),
			fmt.Sprintf("%.2f", r.MeanCPU),
		)
	}
	if *csv {
		if err := tbl.CSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println(tbl.String())
	}

	if *fig4 {
		f4 := report.NewTable("Fig 4 — per-device training time (s / 5,000 records), tasks A and B",
			"device", "platform", "task A (model B)", "task B (model E)")
		for _, p := range pool {
			ra, err := device.Run(model.KindB, p, *records, *seed)
			if err != nil {
				log.Fatal(err)
			}
			rb, err := device.Run(model.KindE, p, *records, *seed)
			if err != nil {
				log.Fatal(err)
			}
			f4.AddRow(p.Name, string(p.Platform),
				fmt.Sprintf("%.1f", ra.TrainSeconds), fmt.Sprintf("%.1f", rb.TrainSeconds))
		}
		fmt.Println(f4.String())
	}

	if *fig1 {
		pm := device.DefaultPopulation()
		pm.Seed = *seed
		devs, err := pm.Sample(100000)
		if err != nil {
			log.Fatal(err)
		}
		f1 := report.NewTable("Fig 1 — device-model concentration (100k sampled users)",
			"platform", "devices", "distinct models", "top-8 share", "gray region")
		for _, plat := range []device.Platform{device.IOS, device.Android} {
			d := device.Distribution(devs, plat, 8)
			top := 0.0
			if len(d.TopShares) > 0 {
				top = d.TopShares[len(d.TopShares)-1]
			}
			f1.AddRow(string(plat), fmt.Sprintf("%d", d.Devices),
				fmt.Sprintf("%d", d.DistinctModels), report.Pct(top), report.Pct(d.GrayShare))
		}
		fmt.Println(f1.String())
	}
}
