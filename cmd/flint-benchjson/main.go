// Command flint-benchjson converts `go test -bench` output on stdin into
// a flat JSON document, so CI can record the serving-path perf trajectory
// (BENCH_coord.json) per PR instead of letting benchmark numbers scroll
// away in build logs.
//
// Every benchmark line becomes one object keyed by the benchmark name
// (the -<GOMAXPROCS> suffix stripped), holding ns/op plus any extra
// reported metrics with units sanitized into identifiers, plus the run's
// parallelism context (gomaxprocs from the stripped suffix, num_cpu from
// the recording machine) so a reader comparing entries across commits
// knows when the hardware changed underneath them:
//
//	{"BenchmarkTaskServeDuringCommit": {"ns_per_op": 3351, "commits_per_sec": 4.77,
//	 "gomaxprocs": 8, "num_cpu": 8}}
//
// With -baseline and -gate it additionally acts as the perf regression
// gate: after writing the fresh document it compares each gated
// benchmark's ns_per_op and allocs_per_op against the baseline file and
// exits nonzero when any regressed beyond -tolerance. -gate repeats to
// gate several benchmarks in one run (sub-benchmarks gate by their full
// name, e.g. BenchmarkShardedRoundThroughput/shards=4). The comparison
// is skipped (with a notice) when the baseline was recorded on a machine
// with a different num_cpu — cross-hardware deltas are not regressions.
//
// Usage:
//
//	go test -run '^$' -bench ... | flint-benchjson [-out file] [-match regex]
//	    [-baseline old.json] [-gate BenchmarkName]... [-tolerance 0.20]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchLine matches "BenchmarkName-8   123   4567 ns/op   89 B/op ...",
// capturing the GOMAXPROCS suffix go test appends to the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+(.*)$`)

// unitName rewrites a go-bench metric unit into a JSON-friendly key:
// "ns/op" → "ns_per_op", "commits/sec" → "commits_per_sec".
func unitName(unit string) string {
	unit = strings.ReplaceAll(unit, "/", "_per_")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, unit)
}

// gateMetrics are the per-op costs the regression gate watches. Throughput
// metrics (speedup, commits/sec) are deliberately excluded: they embed a
// same-run reference of their own and double-count the ns_per_op signal.
var gateMetrics = []string{"ns_per_op", "allocs_per_op"}

// gate compares the fresh entry for name against the baseline document
// and returns a non-empty list of human-readable regressions when the
// gate should fail. A missing baseline entry passes (first run of a new
// benchmark); a num_cpu mismatch skips with a notice.
func gate(results, baseline map[string]map[string]float64, name string, tol float64) []string {
	old, ok := baseline[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "flint-benchjson: gate: no baseline entry for %s; passing\n", name)
		return nil
	}
	fresh, ok := results[name]
	if !ok {
		return []string{fmt.Sprintf("%s: gated benchmark missing from this run", name)}
	}
	if oldCPU, ok := old["num_cpu"]; ok && oldCPU != fresh["num_cpu"] {
		fmt.Fprintf(os.Stderr,
			"flint-benchjson: gate: baseline recorded on num_cpu=%g, this machine has %g; skipping comparison\n",
			oldCPU, fresh["num_cpu"])
		return nil
	}
	var bad []string
	for _, metric := range gateMetrics {
		was, ok := old[metric]
		if !ok || was == 0 {
			continue
		}
		now, ok := fresh[metric]
		if !ok {
			continue
		}
		if now > was*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: %s regressed %.1f%% (%.0f → %.0f, tolerance %.0f%%)",
				name, metric, 100*(now/was-1), was, now, 100*tol))
		}
	}
	return bad
}

// gateList collects repeated -gate flags.
type gateList []string

func (g *gateList) String() string { return strings.Join(*g, ",") }

func (g *gateList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty benchmark name")
	}
	*g = append(*g, v)
	return nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	match := flag.String("match", "", "only record benchmarks whose name matches this regex")
	baselinePath := flag.String("baseline", "", "baseline JSON for the regression gate")
	var gateNames gateList
	flag.Var(&gateNames, "gate", "benchmark name to gate against -baseline (repeatable)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression before the gate fails")
	flag.Parse()

	var filter *regexp.Regexp
	if *match != "" {
		var err error
		if filter, err = regexp.Compile(*match); err != nil {
			log.Fatalf("flint-benchjson: bad -match: %v", err)
		}
	}

	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo everything through so the tool can sit inside a pipe
		// without hiding the human-readable output.
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		fields := strings.Fields(m[3])
		metrics := map[string]float64{}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // ran into non-metric trailing text
			}
			metrics[unitName(fields[i+1])] = v
		}
		if len(metrics) == 0 {
			continue
		}
		procs := float64(runtime.GOMAXPROCS(0))
		if m[2] != "" {
			if p, err := strconv.ParseFloat(m[2], 64); err == nil {
				procs = p
			}
		}
		metrics["gomaxprocs"] = procs
		metrics["num_cpu"] = float64(runtime.NumCPU())
		results[name] = metrics
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("flint-benchjson: read stdin: %v", err)
	}
	if len(results) == 0 {
		log.Fatal("flint-benchjson: no benchmark lines found on stdin")
	}

	// encoding/json emits map keys sorted, so the output is deterministic.
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatalf("flint-benchjson: marshal: %v", err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("flint-benchjson: write %s: %v", *out, err)
	}

	// The gate runs after the write, so a failing run still records its
	// numbers — the artifact is the evidence for debugging the failure.
	if len(gateNames) == 0 {
		return
	}
	if *baselinePath == "" {
		log.Fatal("flint-benchjson: -gate requires -baseline")
	}
	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flint-benchjson: gate: no readable baseline (%v); passing\n", err)
		return
	}
	baseline := map[string]map[string]float64{}
	if err := json.Unmarshal(blob, &baseline); err != nil {
		log.Fatalf("flint-benchjson: gate: parse baseline %s: %v", *baselinePath, err)
	}
	// All gates run before any verdict, so one failing benchmark can't
	// hide regressions in the ones after it.
	var bad []string
	for _, name := range gateNames {
		bad = append(bad, gate(results, baseline, name, *tolerance)...)
	}
	if len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "flint-benchjson: REGRESSION: "+msg)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "flint-benchjson: gate: %s within tolerance\n", gateNames.String())
}
