// Command flint-benchjson converts `go test -bench` output on stdin into
// a flat JSON document, so CI can record the serving-path perf trajectory
// (BENCH_coord.json) per PR instead of letting benchmark numbers scroll
// away in build logs.
//
// Every benchmark line becomes one object keyed by the benchmark name
// (the -<GOMAXPROCS> suffix stripped), holding ns/op plus any extra
// reported metrics with units sanitized into identifiers:
//
//	{"BenchmarkTaskServeDuringCommit": {"ns_per_op": 3351, "commits_per_sec": 4.77}}
//
// Usage: go test -run '^$' -bench ... | flint-benchjson [-out file] [-match regex]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches "BenchmarkName-8   123   4567 ns/op   89 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// unitName rewrites a go-bench metric unit into a JSON-friendly key:
// "ns/op" → "ns_per_op", "commits/sec" → "commits_per_sec".
func unitName(unit string) string {
	unit = strings.ReplaceAll(unit, "/", "_per_")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, unit)
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	match := flag.String("match", "", "only record benchmarks whose name matches this regex")
	flag.Parse()

	var filter *regexp.Regexp
	if *match != "" {
		var err error
		if filter, err = regexp.Compile(*match); err != nil {
			log.Fatalf("flint-benchjson: bad -match: %v", err)
		}
	}

	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo everything through so the tool can sit inside a pipe
		// without hiding the human-readable output.
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		fields := strings.Fields(m[2])
		metrics := map[string]float64{}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // ran into non-metric trailing text
			}
			metrics[unitName(fields[i+1])] = v
		}
		if len(metrics) > 0 {
			results[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("flint-benchjson: read stdin: %v", err)
	}
	if len(results) == 0 {
		log.Fatal("flint-benchjson: no benchmark lines found on stdin")
	}

	// encoding/json emits map keys sorted, so the output is deterministic.
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatalf("flint-benchjson: marshal: %v", err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("flint-benchjson: write %s: %v", *out, err)
	}
}
