// Command flint-fleet is the load generator for cmd/flint-server: it spins
// up thousands of goroutine "devices" sampled from the Fig 1 population
// model (bench-pool profiles plus the Zipf long tail), drives full training
// rounds over the /v1 API — check in, pull task, simulate profile-scaled
// local training, submit an update — and reports throughput and client-side
// latency percentiles.
//
// Example:
//
//	flint-server -mode async -target 64 &
//	flint-fleet -server http://127.0.0.1:8080 -devices 2000 -rounds 5
//
// Against a multi-tenant server, -jobs splits the device budget across
// tenants — "-jobs ads,messaging=s3cret" drives half the devices at job
// ads and half at job messaging (authenticating with its token), with
// disjoint device IDs per job.
//
// Against a sharded coordination tier, -gateway points the same fleet at
// cmd/flint-gateway: the run waits for the tier to report healthy, then
// drives rounds through the gateway's device routing — every other flag
// (churn, bandwidth, fractions) works unchanged.
//
// -virtual switches to the virtual-time load plane (internal/vload):
// instead of a goroutine per device, batched virtual devices are
// multiplexed over event heaps in compressed virtual time, scaling the
// same protocol traffic to hundreds of thousands or millions of devices.
// The server must run with a matching -sched-time-compression so
// device-reported virtual timings land in the right clock domain:
//
//	flint-server -mode sync -target 64 -sched-time-compression 360 &
//	flint-fleet -virtual -devices 1000000 -compression 360 -vduration 24h
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"flint/internal/coord"
	"flint/internal/network"
	"flint/internal/vload"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "coordination server base URL")
	devices := flag.Int("devices", 1000, "simulated device count")
	rounds := flag.Int("rounds", 3, "committed rounds to drive before stopping")
	seed := flag.Int64("seed", 1, "population and behavior seed")
	think := flag.Duration("think", 20*time.Millisecond, "mean device think time between protocol steps")
	computeScale := flag.Float64("compute-scale", 1, "scale simulated local-training time (0 disables)")
	deltaScale := flag.Float64("delta-scale", 0.01, "synthetic update delta magnitude")
	deltaBias := flag.Float64("delta-bias", 0, "constant per-coordinate drift added to honest deltas (makes poison-induced divergence visible in model_norm)")
	poisonFraction := flag.Float64("poison-fraction", 0, "share of devices under adversary control (deterministic per seed; 0 disables)")
	poisonMode := flag.String("poison-mode", "sign-flip", "attack compromised devices mount: sign-flip or random-noise")
	poisonScale := flag.Float64("poison-scale", 10, "attack boost factor (sign-flip amplification / noise std multiplier)")
	jsonFraction := flag.Float64("json-fraction", 0, "share of devices kept on the legacy JSON protocol (0 = all binary, 1 = all JSON)")
	legacyFraction := flag.Float64("legacy-fraction", 0, "share of devices on pre-negotiation binary (full broadcast, no scheme advertisement)")
	bandwidth := flag.Float64("bandwidth", 0, "simulate per-device links: median downlink Mbps (0 disables; uplink at 40%)")
	churn := flag.Bool("churn", false, "drive availability from a generated diurnal session trace instead of an always-on loop")
	traceScale := flag.Float64("trace-scale", 60, "churn: trace seconds replayed per wall second")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run deadline")
	jobs := flag.String("jobs", "", "multi-tenant: comma-separated job list (name or name=token); devices split evenly across jobs with disjoint IDs")
	gateway := flag.Bool("gateway", false, "-server is a shard-tier gateway (flint-gateway): wait for tier health, then watch the rollup for round progress")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON")
	virtual := flag.Bool("virtual", false, "virtual-time load plane: multiplex batched virtual devices over event heaps in compressed virtual time (vload)")
	compression := flag.Float64("compression", 60, "virtual: virtual seconds per wall second (server needs a matching -sched-time-compression)")
	vduration := flag.Duration("vduration", 24*time.Hour, "virtual: virtual time to simulate (24h = one diurnal cycle)")
	vworkers := flag.Int("vworkers", 0, "virtual: event-loop workers / connection-pool bound (0 = 4 x GOMAXPROCS)")
	vbatch := flag.Int("vbatch", 2048, "virtual: devices per POST /v1/checkin/batch request")
	vthink := flag.Duration("vthink", 120*time.Second, "virtual: mean in-session re-poll interval, in virtual time")
	vsessions := flag.Float64("vsessions", 3, "virtual: mean device sessions per virtual day (diurnally modulated)")
	flag.Parse()

	var bw *network.BandwidthModel
	if *bandwidth > 0 {
		m := network.Default
		m.MedianMbps = *bandwidth
		bw = &m
	}
	if *virtual {
		rep, err := vload.Run(vload.Config{
			BaseURL:         *server,
			Gateway:         *gateway,
			Devices:         *devices,
			Compression:     *compression,
			VirtualDuration: *vduration,
			Rounds:          *rounds,
			Seed:            *seed,
			Workers:         *vworkers,
			Batch:           *vbatch,
			Think:           *vthink,
			SessionsPerDay:  *vsessions,
			Bandwidth:       bw,
			Timeout:         *timeout,
		})
		if rep != nil {
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(rep); err != nil {
					log.Fatal(err)
				}
			} else {
				fmt.Print(rep.String())
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	base := coord.FleetConfig{
		BaseURL:        *server,
		Devices:        *devices,
		Rounds:         *rounds,
		Seed:           *seed,
		ThinkTime:      *think,
		ComputeScale:   *computeScale,
		DeltaScale:     *deltaScale,
		DeltaBias:      *deltaBias,
		PoisonFraction: *poisonFraction,
		PoisonMode:     *poisonMode,
		PoisonScale:    *poisonScale,
		JSONFraction:   *jsonFraction,
		LegacyFraction: *legacyFraction,
		Bandwidth:      bw,
		Churn:          *churn,
		TraceScale:     *traceScale,
		Timeout:        *timeout,
		Gateway:        *gateway,
	}
	if *jobs != "" {
		runJobs(base, *jobs, *jsonOut)
		return
	}
	rep, err := coord.RunFleet(base)
	if rep != nil {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Print(rep.String())
			// The per-server counter block only applies to a flat
			// coordinator: a gateway's rollup carries tier state
			// instead, already rendered by the report line above.
			if st := rep.FinalStatus; st != nil && rep.TierShards == 0 {
				fmt.Printf("  server: mode=%s model=%s committed=%d abandoned=%d accepted=%d shed=%d\n",
					st.Mode, st.ModelKind, st.Counters["rounds_committed"],
					st.Counters["rounds_abandoned"], st.Counters["update_accepted"],
					st.Counters["update_rejected_busy"])
				fmt.Printf("  protocol: %d binary tasks (%d delta), %d json tasks, %d binary updates, %d json updates\n",
					st.Counters["task_sent_binary"], st.Counters["task_sent_delta"],
					st.Counters["task_sent_json"],
					st.Counters["update_recv_binary"], st.Counters["update_recv_json"])
				if st.Counters["updates_screened_norm"] > 0 || st.Privacy != nil {
					fmt.Printf("  defense: %s, %d updates norm-screened, %d rounds aborted all-screened\n",
						st.Aggregation, st.Counters["updates_screened_norm"],
						st.Counters["round_aggregate_robust_error"])
				}
				fmt.Printf("  downlink: %.2f MiB full broadcast, %.2f MiB delta (%d cache hits, %d misses, %d aged bases)\n",
					float64(st.Counters["broadcast_bytes_full"])/(1<<20),
					float64(st.Counters["broadcast_bytes_delta"])/(1<<20),
					st.Counters["delta_cache_hits"], st.Counters["delta_cache_misses"],
					st.Counters["delta_base_aged"])
				if sr := st.Scheduler; sr.Enabled {
					fmt.Printf("  sched: %d/%d devices measured, %d remapped off their radio label; on-time %.0f%%, over-commit x%.2f, est task p50/p90/p99 %.2f/%.2f/%.2fs (%d deadline denials)\n",
						sr.Measured, sr.Devices, sr.Remapped, sr.OnTimeFraction*100, sr.OverCommitScale,
						sr.EstTaskP50Sec, sr.EstTaskP90Sec, sr.EstTaskP99Sec,
						st.Counters["task_denied_deadline"])
					for _, name := range []string{"default", "lowbw"} {
						if cs := sr.Cohorts[name]; cs != nil {
							fmt.Printf("  sched cohort %-7s %4d devices, bandwidth hist %v\n", name, cs.Devices, cs.BandwidthHist)
						}
					}
				}
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runJobs drives one fleet per tenant concurrently: the device budget
// splits evenly (remainder to the first jobs), each job's fleet gets a
// disjoint device-ID range and its own seed, and tokens ride along from
// the name=token syntax.
func runJobs(base coord.FleetConfig, list string, jsonOut bool) {
	type jobTarget struct {
		name, token string
	}
	var targets []jobTarget
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, token, _ := strings.Cut(part, "=")
		targets = append(targets, jobTarget{name: name, token: token})
	}
	if len(targets) == 0 {
		log.Fatal("-jobs: no job names given")
	}
	per := base.Devices / len(targets)
	rem := base.Devices % len(targets)
	var wg sync.WaitGroup
	reps := make([]*coord.FleetReport, len(targets))
	errs := make([]error, len(targets))
	offset := int64(0)
	for i, t := range targets {
		cfg := base
		cfg.Job, cfg.Token = t.name, t.token
		cfg.Devices = per
		if i < rem {
			cfg.Devices++
		}
		cfg.IDOffset = offset
		offset += int64(cfg.Devices)
		cfg.Seed = base.Seed + int64(i)*1_000_003
		wg.Add(1)
		go func(i int, cfg coord.FleetConfig) {
			defer wg.Done()
			reps[i], errs[i] = coord.RunFleet(cfg)
		}(i, cfg)
	}
	wg.Wait()
	failed := false
	for i, t := range targets {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if reps[i] != nil {
				if err := enc.Encode(struct {
					Job string `json:"job"`
					*coord.FleetReport
				}{Job: t.name, FleetReport: reps[i]}); err != nil {
					log.Fatal(err)
				}
			}
		} else if reps[i] != nil {
			fmt.Printf("=== job %s ===\n%s", t.name, reps[i].String())
		}
		if errs[i] != nil {
			failed = true
			log.Printf("job %s: %v", t.name, errs[i])
		}
	}
	if failed {
		os.Exit(1)
	}
}
