// Command flint-proxy is the proxy data generator tool of §3.3: it derives
// per-client FL partitions for each case-study domain, reports Table 2's
// heterogeneity metadata (at the paper's full client populations for the
// quantity statistics), prints the Fig 5 quantity distributions, and
// optionally writes partition-per-executor files (§3.4's storage layout).
package main

import (
	"flag"
	"fmt"
	"log"

	"flint/internal/data"
	"flint/internal/metrics"
	"flint/internal/partition"
	"flint/internal/report"
)

func main() {
	clients := flag.Int("clients", 400, "clients to materialize per domain (records + labels)")
	executors := flag.Int("executors", 20, "executor partition count")
	outDir := flag.String("out", "", "write executor partitions to this directory")
	seed := flag.Int64("seed", 1, "generator seed")
	fullScale := flag.Bool("fullscale", false, "compute Table 2 quantity stats at the paper's full populations (700k/1.02M/16.4M clients)")
	flag.Parse()

	type domainSpec struct {
		name     string
		quantity data.QuantityModel
		pop      int
		label    float64
		lookback int
		gen      func() (data.Generator, error)
	}
	domains := []domainSpec{
		{"datasetA (ads)", data.AdsQuantity, 700_000, 0.28, 90,
			func() (data.Generator, error) { return data.NewAdsGenerator(data.DefaultAdsConfig(*clients, *seed)) }},
		{"datasetB (messaging)", data.MessagingQuantity, 1_024_950, 0.05, 28,
			func() (data.Generator, error) {
				return data.NewMessagingGenerator(data.DefaultMessagingConfig(*clients, *seed))
			}},
		{"datasetC (search)", data.SearchQuantity, 16_422_290, 0.06, 61,
			func() (data.Generator, error) {
				return data.NewSearchGenerator(data.DefaultSearchConfig(*clients, *seed))
			}},
	}

	tbl := report.NewTable("Table 2 — proxy dataset characteristics",
		"dataset", "client pop", "max records", "avg records", "std records", "label ratio", "lookback")
	for _, d := range domains {
		pop := *clients
		if *fullScale {
			pop = d.pop
		}
		// Quantity statistics at population scale without materializing
		// records (the §3.4 trick that keeps 16.4M clients tractable).
		qs, err := partition.QuantityStats(d.name, d.quantity, pop, d.label, d.lookback, *seed)
		if err != nil {
			log.Fatal(err)
		}
		// Label ratio from materialized down-scaled records.
		gen, err := d.gen()
		if err != nil {
			log.Fatal(err)
		}
		shards := make([]data.ClientShard, *clients)
		for i := range shards {
			shards[i] = gen.GenerateClient(int64(i))
		}
		rs := partition.ComputeStats(d.name, shards, d.lookback)
		tbl.AddRow(d.name,
			fmt.Sprintf("%d", qs.ClientPop),
			fmt.Sprintf("%d", qs.MaxRecords),
			fmt.Sprintf("%.2f", qs.AvgRecords),
			fmt.Sprintf("%.2f", qs.StdRecords),
			fmt.Sprintf("%.2f", rs.LabelRatio),
			fmt.Sprintf("%dd", d.lookback),
		)

		// Fig 5 — quantity distribution sparkline (log-bucketed counts).
		quantities := make([]float64, len(shards))
		for i, s := range shards {
			quantities[i] = float64(len(s.Examples))
		}
		_, counts := metrics.Histogram(quantities, 30)
		vals := make([]float64, len(counts))
		for i, c := range counts {
			vals[i] = float64(c)
		}
		fmt.Printf("Fig 5 — %-22s quantity histogram: %s (max bucket %d clients)\n",
			d.name, report.Sparkline(vals), int(maxOf(vals)))

		if *outDir != "" {
			parts, err := partition.RoundRobin(shards, *executors)
			if err != nil {
				log.Fatal(err)
			}
			paths, err := partition.WriteAll(parts, fmt.Sprintf("%s/%s", *outDir, sanitize(d.name)))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %d executor partitions for %s\n", len(paths), d.name)
		}
	}
	fmt.Println()
	fmt.Println(tbl.String())
	fmt.Println("(paper Table 2: A pop 700k avg 99 std 667 label 0.28; B pop 1.02M avg 184 std 374 label 0.05; C pop 16.4M avg 1.53 std 1.47 label 0.06)")
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
