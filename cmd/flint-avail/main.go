// Command flint-avail is the device-availability analysis tool of §3.2: it
// generates (or, in production, would ingest) a session log, measures the
// Table 1 criteria fractions, builds the eligibility-filtered availability
// trace, and prints the Fig 2 weekly fluctuation series.
package main

import (
	"flag"
	"fmt"
	"log"

	"flint/internal/availability"
	"flint/internal/report"
)

func main() {
	clients := flag.Int("clients", 3000, "client population")
	days := flag.Int("days", 14, "log span in days")
	seed := flag.Int64("seed", 1, "generator seed")
	bucketHrs := flag.Float64("bucket", 1, "Fig 2 bucket size in hours")
	flag.Parse()

	cfg := availability.DefaultLogConfig(*clients, *seed)
	cfg.Days = *days
	sessions, err := availability.GenerateLog(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Session log: %d sessions from %d clients over %d days\n\n",
		len(sessions), *clients, *days)

	t1, err := availability.ComputeTable1(sessions)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("Table 1 — device availability after each participation criterion",
		"training criteria", "devices available", "paper")
	tbl.AddRow("A: connected to WiFi", report.Pct(t1.WiFi), "70%")
	tbl.AddRow("B: battery level >= 80%", report.Pct(t1.Battery), "34%")
	tbl.AddRow("C: OS release >= Sept 2019", report.Pct(t1.ModernOS), "93%")
	tbl.AddRow("A ∩ B ∩ C", report.Pct(t1.Intersect), "22%")
	fmt.Println(tbl.String())

	criteria := availability.Criteria{RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true}
	eligible := availability.Apply(sessions, criteria)
	trace := availability.BuildTrace(eligible)
	series, err := availability.ComputeSeries(trace, *bucketHrs*3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 2 — normalized availability over %d days (bucket %.1f h):\n", *days, *bucketHrs)
	// Print one sparkline per day for readability.
	perDay := int(24 / *bucketHrs)
	for d := 0; d*perDay < len(series.Normalized); d++ {
		end := (d + 1) * perDay
		if end > len(series.Normalized) {
			end = len(series.Normalized)
		}
		fmt.Printf("  day %2d  %s\n", d+1, report.Sparkline(series.Normalized[d*perDay:end]))
	}
	fmt.Printf("\nPeak concurrent devices: %d; peak/trough ratio %.1fx (paper: trough ≈ 15%% of weekly peak)\n",
		series.Peak, series.PeakTroughRatio())
	fmt.Printf("Eligible clients in trace: %d of %d\n", trace.NumClients(), *clients)
}
